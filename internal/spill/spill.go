// Package spill implements the external-memory tier of the counting
// engine: a partitioned on-disk group-by for datasets whose grouping state
// would not fit the caller's memory budget.
//
// The map kernels in internal/core hold one map entry per distinct group
// for the whole scan — unbounded-domain attribute sets can make that state
// arbitrarily large. The spill group-by bounds it: fixed-width key records
// are hash-partitioned into K on-disk runs during the scan, and the runs
// are then counted with ordinary in-memory maps. The hash partition sends
// every occurrence of a key to the same run, so runs hold disjoint key
// sets, per-run counts are exact final counts, and the total distinct
// count is the plain sum over runs — which is what makes the cap-abort of
// label sizing exact across runs: the running total is monotone, and the
// scan stops the moment it proves the bound breached. Peak grouping memory
// is one run's map per counting worker (the caller picks K so a run's
// estimated footprint fits its per-worker budget share) instead of the
// whole key space.
//
// Two record encodings share the machinery: opaque RecWidth-byte records
// counted into map[string]int (CountRuns), and fixed-width 8-byte
// little-endian uint64 records counted into map[uint64]int (AddU64 /
// CountRunsU64) for key spaces that fit uint64 but whose map state is over
// budget. Run counting is parallel: runs are key-disjoint, so CountRuns
// splits them K-way across workers with a shared atomic distinct total for
// exact cross-worker cap-abort, and each worker reuses one pooled map and
// read chunk across its runs.
//
// Run files are a corruption-detecting format (v2): every flush writes one
// CRC32C-checksummed frame, and every read path verifies the frame it
// decodes before a single record reaches a count map — a torn sector or
// bit flip surfaces as a typed CorruptError, never as a silently wrong
// count. Unframed (v1) run files written by earlier releases still open
// read-only; see Open. All file access goes through an injectable
// iofault.FS seam, so durability tests can script the exact fault a disk
// would produce.
//
// The package is deliberately below internal/core in the import order: it
// deals only in opaque fixed-width byte records, so core can select it from
// kernel dispatch without a cycle. Buffers are recycled through the BufPool
// interface, which *core.VecPool satisfies.
package spill

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
	"syscall"

	"pcbl/internal/iofault"
	"pcbl/internal/workpool"
)

// BufPool supplies reusable byte buffers for the writer's partition buffers
// and the run readers' chunk buffers. *core.VecPool satisfies it; a nil-safe
// implementation (or a nil Config.Pool) degrades to plain allocation.
type BufPool interface {
	GetBytes(n int) []byte
	PutBytes(b []byte)
}

// Config describes one spill group-by.
type Config struct {
	// RecWidth is the fixed record width in bytes. Required, > 0. Callers
	// using the uint64 record format (AddU64/CountRunsU64) must set it to 8.
	RecWidth int
	// Runs is the number of hash partitions K. Required, >= 1. Callers
	// size it so one run's estimated in-memory map fits each counting
	// worker's share of their budget (CountRuns keeps one run map live per
	// worker).
	Runs int
	// Dir is the parent directory for the run files; the writer creates
	// (and on Cleanup removes) a private subdirectory under it. Empty
	// means the system temp directory.
	Dir string
	// BufBytes is the per-partition write-buffer size; records are staged
	// there and flushed in large sequential writes. 0 means a default
	// sized so a shard's K buffers stay a small multiple of the run count.
	BufBytes int
	// Pool recycles buffers across spills; nil means plain allocation.
	Pool BufPool
	// FS is the filesystem seam all run-file access goes through; nil
	// means the real OS filesystem. Durability tests inject faults here.
	FS iofault.FS
}

// Stats reports the work one spill group-by performed.
type Stats struct {
	// Runs is the number of on-disk partitions.
	Runs int
	// RecordsSpilled counts records written across all partitions.
	RecordsSpilled int64
	// BytesWritten counts bytes written to the run files, frame headers
	// included.
	BytesWritten int64
	// MaxRunEntries is the largest per-run distinct-key count observed by
	// CountRuns — the quantity the caller's run-sizing bounds.
	MaxRunEntries int
}

// ErrCorrupt marks run data that failed checksum or structural
// verification; errors.Is(err, ErrCorrupt) matches every CorruptError.
var ErrCorrupt = errors.New("spill: corrupt run data")

// CorruptError reports where a run file failed verification: a frame
// checksum mismatch, a truncated frame, or a mid-record truncation of an
// unframed (v1) run. It wraps ErrCorrupt.
type CorruptError struct {
	Run    int   // run index within the writer
	Off    int64 // byte offset of the bad frame (framed runs) or tail
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("spill: run %d corrupt at offset %d: %s", e.Run, e.Off, e.Detail)
}

// Is reports ErrCorrupt as this error's class, so callers match the
// category without knowing the location details.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// ErrNoSpace marks write failures caused by a full disk (the underlying
// error chain contains syscall.ENOSPC). Callers use errors.Is(err,
// ErrNoSpace) to route the affected set through an in-memory fallback
// instead of treating a full disk like generic I/O trouble; the failed
// writer's partial runs are removed by the usual Cleanup discipline.
var ErrNoSpace = errors.New("spill: no space left on device")

// noSpaceError tags an ENOSPC-caused failure so it matches both ErrNoSpace
// (the class) and, through Unwrap, the original syscall.ENOSPC chain.
type noSpaceError struct{ err error }

func (e *noSpaceError) Error() string        { return "spill: no space left on device: " + e.err.Error() }
func (e *noSpaceError) Unwrap() error        { return e.err }
func (e *noSpaceError) Is(target error) bool { return target == ErrNoSpace }

// WrapNoSpace classifies a storage error for layers writing label payloads
// outside this package: ENOSPC anywhere in the chain becomes the typed
// ErrNoSpace (the artifact writer uses it so saves and merges on a full
// disk match errors.Is(err, ErrNoSpace)); everything else passes through
// unchanged.
func WrapNoSpace(err error) error { return wrapNoSpace(err) }

// wrapNoSpace classifies a storage error: ENOSPC anywhere in the chain
// becomes a typed ErrNoSpace; everything else passes through unchanged.
func wrapNoSpace(err error) error {
	if err != nil && errors.Is(err, syscall.ENOSPC) {
		return &noSpaceError{err}
	}
	return err
}

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters of the
// partition-routing hash.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// castagnoli is the CRC32C polynomial table of the frame checksums —
// hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame layout of v2 run files: every flush appends one frame,
//
//	uint32 payload length | uint32 CRC32C(payload) | payload
//
// with the payload a whole number of RecWidth-byte records. Readers verify
// the checksum of each frame before decoding any record from it.
const (
	frameHdrLen = 8
	// maxFrameBytes bounds a frame's declared payload so a corrupt length
	// field cannot drive an allocation by gigabytes.
	maxFrameBytes = 1 << 24
)

// routeHash is the fixed, process-independent partition hash: FNV-1a over
// the record bytes followed by a murmur-style 64-bit finisher. The finisher
// spreads FNV's weakly mixed low bits so the modulo-K partition stays
// balanced even on dense packed keys; the fixed parameters make routing
// deterministic across processes, which is what lets a run directory
// adopted into a label artifact keep answering single-run lookups after a
// read-only reopen in another process. Partition assignment never affects
// results, only how records distribute across run files.
func routeHash(rec []byte) uint64 {
	h := uint64(fnv64Offset)
	for _, b := range rec {
		h ^= uint64(b)
		h *= fnv64Prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Writer partitions fixed-width records into K on-disk runs. Create one
// with NewWriter, obtain one ShardWriter per producing goroutine, and after
// all shards are closed call CountRuns (or CountRunsU64); always Cleanup
// (it is idempotent and safe to defer before any error handling, including
// panics).
type Writer struct {
	cfg    Config
	fs     iofault.FS
	dir    string
	owns   bool // created the run files; Cleanup deletes them and the dir
	framed bool // v2 checksummed-frame layout (vs raw v1 records)
	files  []iofault.File
	mus    []sync.Mutex
	wmu    sync.Mutex // guards stats accumulation from shards and count workers
	stats  Stats
	done   bool
}

// NewWriter creates the run files in a fresh private directory. New runs
// are always written in the framed (v2) layout.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.RecWidth <= 0 {
		return nil, fmt.Errorf("spill: record width must be positive, got %d", cfg.RecWidth)
	}
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("spill: run count must be >= 1, got %d", cfg.Runs)
	}
	if cfg.BufBytes <= 0 {
		cfg.BufBytes = defaultBufBytes(cfg.Runs)
	}
	// Round the buffer down to whole records so flushed frames never split
	// a record (concurrent shards interleave only whole frames).
	if cfg.BufBytes < cfg.RecWidth {
		cfg.BufBytes = cfg.RecWidth
	}
	cfg.BufBytes -= cfg.BufBytes % cfg.RecWidth

	fsys := iofault.Resolve(cfg.FS)
	dir, err := fsys.MkdirTemp(cfg.Dir, "pcbl-spill-*")
	if err != nil {
		return nil, wrapNoSpace(err)
	}
	w := &Writer{
		cfg:    cfg,
		fs:     fsys,
		dir:    dir,
		owns:   true,
		framed: true,
		files:  make([]iofault.File, cfg.Runs),
		mus:    make([]sync.Mutex, cfg.Runs),
	}
	w.stats.Runs = cfg.Runs
	for i := range w.files {
		f, err := fsys.Create(runPath(dir, i))
		if err != nil {
			w.Cleanup()
			return nil, wrapNoSpace(err)
		}
		w.files[i] = f
	}
	return w, nil
}

// runPath names run i inside dir; NewWriter, Open and AdoptInto agree on
// the layout.
func runPath(dir string, i int) string { return fmt.Sprintf("%s/run-%04d", dir, i) }

// Open reopens an existing run directory read-only — the reverse of
// AdoptInto, used to serve a label artifact's spilled PCs without
// re-counting. The directory must hold run files named as NewWriter
// creates them. framed selects the layout: true for checksummed v2 frames
// (every file's frame chain is structurally validated here — lengths and
// truncation; checksums verify lazily on each scan), false for raw v1
// records (every file must be a whole number of recWidth-byte records).
// The returned writer does not own the files: Cleanup closes the
// descriptors but leaves the directory intact, and shard writes are not
// supported. fsys nil means the OS filesystem.
func Open(dir string, recWidth, runs int, framed bool, pool BufPool, fsys iofault.FS) (*Writer, error) {
	if recWidth <= 0 {
		return nil, fmt.Errorf("spill: record width must be positive, got %d", recWidth)
	}
	if runs < 1 {
		return nil, fmt.Errorf("spill: run count must be >= 1, got %d", runs)
	}
	f := iofault.Resolve(fsys)
	w := &Writer{
		cfg:    Config{RecWidth: recWidth, Runs: runs, BufBytes: defaultBufBytes(runs), Pool: pool, FS: fsys},
		fs:     f,
		dir:    dir,
		framed: framed,
		files:  make([]iofault.File, runs),
		mus:    make([]sync.Mutex, runs),
	}
	w.stats.Runs = runs
	for i := range w.files {
		file, err := f.Open(runPath(dir, i))
		if err != nil {
			w.Cleanup()
			return nil, err
		}
		w.files[i] = file
		recs, err := w.validateRun(i)
		if err != nil {
			w.Cleanup()
			return nil, err
		}
		fi, err := file.Stat()
		if err != nil {
			w.Cleanup()
			return nil, err
		}
		w.stats.BytesWritten += fi.Size()
		w.stats.RecordsSpilled += recs
	}
	return w, nil
}

// validateRun checks run i's structure and returns its record count: for
// framed runs it walks the frame chain (headers only — checksums verify on
// scan), for raw runs it checks whole-record length.
func (w *Writer) validateRun(run int) (records int64, err error) {
	f := w.files[run]
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := fi.Size()
	if !w.framed {
		if size%int64(w.cfg.RecWidth) != 0 {
			return 0, &CorruptError{Run: run, Off: size - size%int64(w.cfg.RecWidth),
				Detail: fmt.Sprintf("truncated mid-record (%d trailing bytes)", size%int64(w.cfg.RecWidth))}
		}
		return size / int64(w.cfg.RecWidth), nil
	}
	var hdr [frameHdrLen]byte
	var off int64
	for off < size {
		if size-off < frameHdrLen {
			return 0, &CorruptError{Run: run, Off: off, Detail: fmt.Sprintf("truncated frame header (%d trailing bytes)", size-off)}
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, err
		}
		plen := binary.LittleEndian.Uint32(hdr[:4])
		if err := checkFrameLen(run, off, int(plen), w.cfg.RecWidth); err != nil {
			return 0, err
		}
		if off+frameHdrLen+int64(plen) > size {
			return 0, &CorruptError{Run: run, Off: off,
				Detail: fmt.Sprintf("frame declares %d payload bytes, file ends %d short", plen, off+frameHdrLen+int64(plen)-size)}
		}
		records += int64(plen) / int64(w.cfg.RecWidth)
		off += frameHdrLen + int64(plen)
	}
	return records, nil
}

// checkFrameLen validates one frame's declared payload length.
func checkFrameLen(run int, off int64, plen, recWidth int) error {
	if plen <= 0 || plen > maxFrameBytes || plen%recWidth != 0 {
		return &CorruptError{Run: run, Off: off, Detail: fmt.Sprintf("bad frame length %d (record width %d)", plen, recWidth)}
	}
	return nil
}

// Framed reports whether the writer's run files use the checksummed v2
// frame layout. Artifact manifests record it so a reopened (or re-adopted)
// run directory is always read with the layout it was written in.
func (w *Writer) Framed() bool { return w.framed }

// AdoptInto relocates the run files into dst (an existing directory) and
// hands their ownership to it: the writer keeps serving scans and lookups
// from the new location, and Cleanup thereafter closes descriptors without
// deleting anything. Owned files move by rename — the open descriptors
// stay valid because the inodes do not change — with a copy-and-reopen
// fallback when rename cannot cross the filesystem boundary; a writer that
// does not own its files (already adopted, or reopened with Open) copies
// instead, so adopting the same runs into a second artifact never steals
// them from the first. Adoption is durable on return: every adopted run is
// fsynced (copies before the source is ever deleted), then dst's directory
// entries are fsynced. Must not run concurrently with scans or shard
// writes.
func (w *Writer) AdoptInto(dst string) error {
	if w.done {
		return fmt.Errorf("spill: AdoptInto after Cleanup")
	}
	ownedDir := w.owns
	for i := range w.files {
		dstPath := runPath(dst, i)
		if w.owns {
			if err := w.fs.Rename(runPath(w.dir, i), dstPath); err == nil {
				continue
			}
			// Rename failed (typically EXDEV: dst on another filesystem);
			// fall through to copying this run.
		}
		if err := w.copyRun(i, dstPath); err != nil {
			return fmt.Errorf("spill: adopting run %d: %w", i, wrapNoSpace(err))
		}
	}
	// Durability barrier: run data written during the build was never
	// fsynced (the build's own directory is transient). The artifact the
	// runs now belong to must survive a crash once its manifest commits,
	// so flush file data first, then the directory entries. Renamed files
	// sync through their still-open descriptors; copied files were already
	// synced by copyRun, before the source could be deleted below.
	for i, f := range w.files {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("spill: syncing adopted run %d: %w", i, err)
		}
	}
	if err := w.fs.SyncDir(dst); err != nil {
		return fmt.Errorf("spill: syncing adopted run directory: %w", err)
	}
	if ownedDir {
		w.fs.RemoveAll(w.dir)
	}
	w.dir = dst
	w.owns = false
	return nil
}

// copyRun copies run i's bytes to dstPath through the already-open
// descriptor, fsyncs the copy, and swaps the writer's descriptor to it.
// The copy is durable before the function returns, so a caller that
// deletes the source afterwards can never lose the run to a crash.
func (w *Writer) copyRun(i int, dstPath string) error {
	f := w.files[i]
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	out, err := w.fs.Create(dstPath)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, io.NewSectionReader(f, 0, fi.Size())); err != nil {
		out.Close()
		w.fs.Remove(dstPath)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		w.fs.Remove(dstPath)
		return err
	}
	if err := out.Close(); err != nil {
		w.fs.Remove(dstPath)
		return err
	}
	nf, err := w.fs.Open(dstPath)
	if err != nil {
		return err
	}
	f.Close()
	w.files[i] = nf
	return nil
}

// defaultBufBytes keeps a shard's total buffer memory (K buffers) around a
// quarter MiB regardless of the run count, within [4 KiB, 64 KiB] per run.
func defaultBufBytes(runs int) int {
	b := (256 << 10) / runs
	if b < 4<<10 {
		return 4 << 10
	}
	if b > 64<<10 {
		return 64 << 10
	}
	return b
}

// NumRuns returns the partition count K.
func (w *Writer) NumRuns() int { return w.cfg.Runs }

// Owned reports whether the writer owns its run files (created by NewWriter
// and not relocated by AdoptInto). Only owned runs accept further shard
// writes: Open reopens files read-only, and an adopted directory belongs to
// a committed artifact whose manifest records the runs' exact contents —
// appending in place would desync them. Incremental merge uses this to
// decide between appending delta records to a live writer and rewriting the
// runs into a fresh one.
func (w *Writer) Owned() bool { return w.owns }

// RunOf returns the partition a record routes to. Every occurrence of a
// key lands in the same run; merge-on-read consumers use it to locate the
// single run that can hold a looked-up key. The routing hash is fixed (see
// routeHash), so a writer reopened from an adopted run directory routes
// identically to the writer that spilled the records.
func (w *Writer) RunOf(rec []byte) int {
	return int(routeHash(rec) % uint64(w.cfg.Runs))
}

// RunOfU64 is RunOf for the uint64 record format.
func (w *Writer) RunOfU64(key uint64) int {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	return w.RunOf(b[:])
}

// Shard returns a writer-local view for one producing goroutine: Add is not
// safe for concurrent use on a single ShardWriter, but any number of shards
// may add concurrently. Close flushes and returns the shard's buffers to
// the pool; it must be called (even after errors) before CountRuns.
func (w *Writer) Shard() *ShardWriter {
	s := &ShardWriter{w: w, bufs: make([][]byte, w.cfg.Runs)}
	for i := range s.bufs {
		// Reserve the frame header at the front of each buffer so a flush
		// is a single whole-frame write.
		s.bufs[i] = getBuf(w.cfg.Pool, w.cfg.BufBytes+frameHdrLen)[:frameHdrLen]
	}
	return s
}

// ShardWriter buffers one goroutine's records per partition and flushes
// them to the shared run files in whole-frame writes.
type ShardWriter struct {
	w    *Writer
	bufs [][]byte
	recs int64
	err  error
}

// Add appends one record (len must equal the configured RecWidth). After a
// write error Add becomes a no-op and Close reports the first error.
func (s *ShardWriter) Add(rec []byte) {
	if s.err != nil {
		return
	}
	if len(rec) != s.w.cfg.RecWidth {
		s.err = fmt.Errorf("spill: record length %d, want %d", len(rec), s.w.cfg.RecWidth)
		return
	}
	run := s.w.RunOf(rec)
	if len(s.bufs[run])+len(rec) > cap(s.bufs[run]) {
		s.flush(run)
		if s.err != nil {
			return
		}
	}
	s.bufs[run] = append(s.bufs[run], rec...)
	s.recs++
}

// AddU64 appends one uint64 record in the fixed 8-byte little-endian
// encoding. The writer must have been configured with RecWidth 8; the
// partition assignment matches RunOfU64.
func (s *ShardWriter) AddU64(key uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	s.Add(b[:])
}

// flush seals the shard's buffered records for run into one checksummed
// frame and writes it. Whole frames interleave safely across shards under
// the per-run mutex.
func (s *ShardWriter) flush(run int) {
	buf := s.bufs[run]
	if len(buf) <= frameHdrLen {
		return
	}
	payload := buf[frameHdrLen:]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	w := s.w
	w.mus[run].Lock()
	_, err := w.files[run].Write(buf)
	w.mus[run].Unlock()
	if err != nil {
		s.err = wrapNoSpace(err)
		return
	}
	w.wmu.Lock()
	w.stats.BytesWritten += int64(len(buf))
	w.wmu.Unlock()
	s.bufs[run] = buf[:frameHdrLen]
}

// Close flushes every partition buffer and releases them to the pool. It
// returns the first error the shard hit.
func (s *ShardWriter) Close() error {
	for run := range s.bufs {
		if s.err == nil {
			s.flush(run)
		}
		putBuf(s.w.cfg.Pool, s.bufs[run])
		s.bufs[run] = nil
	}
	s.w.wmu.Lock()
	s.w.stats.RecordsSpilled += s.recs
	s.w.wmu.Unlock()
	s.recs = 0
	return s.err
}

// readChunkBytes is the streaming granularity of raw-run counting: v1 runs
// are read in chunks of this size (rounded to whole records) so peak
// reader memory stays fixed no matter how large a run file grew. Framed
// runs read frame-at-a-time instead, bounded by the flush buffer that
// wrote them.
const readChunkBytes = 256 << 10

// chunkLen sizes the pooled read buffer: whole records near readChunkBytes
// for raw runs, at least one write buffer plus header for framed runs
// (scans grow past it only for frames written with a larger BufBytes).
func (w *Writer) chunkLen() int {
	n := readChunkBytes - readChunkBytes%w.cfg.RecWidth
	if n < w.cfg.RecWidth {
		n = w.cfg.RecWidth
	}
	if w.framed && n < w.cfg.BufBytes+frameHdrLen {
		n = w.cfg.BufBytes + frameHdrLen
	}
	return n
}

// scanRun streams run r's records through chunk, invoking fn once per
// record (the slice is only valid for the duration of the call). fn
// returning false aborts the scan. Reads go through ReadAt at explicit
// offsets, so any number of scans — of the same or different runs — may
// proceed concurrently without sharing file positions. Framed runs verify
// every frame's checksum before decoding records from it; corruption
// surfaces as a CorruptError, never as wrong records.
func (w *Writer) scanRun(run int, chunk []byte, fn func(rec []byte) bool) (aborted bool, err error) {
	if w.framed {
		return w.scanRunFramed(run, chunk, fn)
	}
	return w.scanRunRaw(run, chunk, fn)
}

// scanRunRaw streams an unframed (v1) run.
func (w *Writer) scanRunRaw(run int, chunk []byte, fn func(rec []byte) bool) (aborted bool, err error) {
	f := w.files[run]
	var off int64
	for {
		n, rerr := f.ReadAt(chunk, off)
		if rerr != nil && rerr != io.EOF {
			return false, rerr
		}
		// ReadAt fills the whole chunk unless it hit EOF or an error, so a
		// ragged tail can only appear on the final chunk.
		if n%w.cfg.RecWidth != 0 {
			return false, &CorruptError{Run: run, Off: off + int64(n-n%w.cfg.RecWidth),
				Detail: fmt.Sprintf("truncated mid-record (%d trailing bytes)", n%w.cfg.RecWidth)}
		}
		for o := 0; o < n; o += w.cfg.RecWidth {
			if !fn(chunk[o : o+w.cfg.RecWidth]) {
				return true, nil
			}
		}
		off += int64(n)
		if rerr == io.EOF {
			return false, nil
		}
	}
}

// scanRunFramed streams a framed (v2) run frame-by-frame, verifying each
// frame's CRC32C before any record from it reaches fn.
func (w *Writer) scanRunFramed(run int, chunk []byte, fn func(rec []byte) bool) (aborted bool, err error) {
	f := w.files[run]
	var hdr [frameHdrLen]byte
	var off int64
	for {
		n, rerr := f.ReadAt(hdr[:], off)
		if n == 0 && rerr == io.EOF {
			return false, nil
		}
		if n < frameHdrLen {
			if rerr == nil || rerr == io.EOF {
				return false, &CorruptError{Run: run, Off: off, Detail: fmt.Sprintf("truncated frame header (%d bytes)", n)}
			}
			return false, rerr
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if err := checkFrameLen(run, off, plen, w.cfg.RecWidth); err != nil {
			return false, err
		}
		if plen > len(chunk) {
			// Frame written with a larger flush buffer than ours; grow once.
			chunk = make([]byte, plen)
		}
		payload := chunk[:plen]
		pn, perr := f.ReadAt(payload, off+frameHdrLen)
		if pn < plen {
			if perr == nil || perr == io.EOF {
				return false, &CorruptError{Run: run, Off: off, Detail: fmt.Sprintf("truncated frame payload (%d of %d bytes)", pn, plen)}
			}
			return false, perr
		}
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return false, &CorruptError{Run: run, Off: off, Detail: fmt.Sprintf("frame checksum mismatch (got %08x, want %08x)", got, want)}
		}
		for o := 0; o < plen; o += w.cfg.RecWidth {
			if !fn(payload[o : o+w.cfg.RecWidth]) {
				return true, nil
			}
		}
		off += frameHdrLen + int64(plen)
	}
}

// ScanRun streams one run's raw records through a pooled chunk buffer.
// Safe for concurrent use (distinct or identical runs); merge-on-read
// consumers rebuild single-run maps through it.
func (w *Writer) ScanRun(run int, fn func(rec []byte) bool) error {
	if w.done {
		return fmt.Errorf("spill: ScanRun after Cleanup")
	}
	if run < 0 || run >= len(w.files) {
		return fmt.Errorf("spill: run %d out of range [0, %d)", run, len(w.files))
	}
	chunk := getBuf(w.cfg.Pool, w.chunkLen())
	defer putBuf(w.cfg.Pool, chunk)
	_, err := w.scanRun(run, chunk, fn)
	return err
}

// CountRuns counts each run with an in-memory map[string]int and reports
// the total distinct-record count with exactly the sequential cap-abort
// contract of label sizing: when cap >= 0 and the total distinct count
// exceeds cap, counting stops and the result is (cap+1, false).
//
// Runs hold disjoint keys, so they are counted independently: with
// workers > 1 the runs are split K-way across worker goroutines, each
// reusing one map and one pooled read chunk across its runs, and the
// distinct total is a shared atomic counter — a new key anywhere bumps it,
// so every worker observes the exact monotone global count and the
// cap-abort fires at precisely the insert that proves the bound breached,
// regardless of scheduling. Results are identical for every worker count.
//
// emit, when non-nil, is invoked once per fully counted run while its map
// is still live — the caller merges (runs are key-disjoint, so plain
// inserts suffice) or just observes; returning false stops early with the
// counts so far. emit calls are serialized under an internal lock, but run
// completion order is unspecified with workers > 1, and the map is reused
// for the worker's next run: emit must not retain it. A panic in emit (or
// anywhere in a counting worker) is re-raised on the calling goroutine, so
// the caller's deferred Cleanup still runs.
func (w *Writer) CountRuns(cap, workers int, emit func(run int, counts map[string]int) bool) (size int, within bool, err error) {
	return countRuns(nil, w, cap, workers, addRecBytes, emit)
}

// CountRunsU64 is CountRuns for the uint64 record format: 8-byte
// little-endian records counted into map[uint64]int — no per-key string
// materialization, the same cap-abort and parallelism contract.
func (w *Writer) CountRunsU64(cap, workers int, emit func(run int, counts map[uint64]int) bool) (size int, within bool, err error) {
	return countRuns(nil, w, cap, workers, addRecU64, emit)
}

// CountRunsCtx is CountRuns with cooperative cancellation: when ctx fires,
// workers stop at the next run boundary (and, within a run, at the next
// ctxCheckRecs-record stride), the shared stop flag fans the abort out to
// every worker — the same machinery as the cap-abort — and the context's
// error is returned. A nil ctx (or context.Background()) costs a single
// nil compare per check.
func (w *Writer) CountRunsCtx(ctx context.Context, cap, workers int, emit func(run int, counts map[string]int) bool) (size int, within bool, err error) {
	return countRuns(ctx, w, cap, workers, addRecBytes, emit)
}

// CountRunsU64Ctx is CountRunsU64 with cooperative cancellation; see
// CountRunsCtx.
func (w *Writer) CountRunsU64Ctx(ctx context.Context, cap, workers int, emit func(run int, counts map[uint64]int) bool) (size int, within bool, err error) {
	return countRuns(ctx, w, cap, workers, addRecU64, emit)
}

// ctxCheckRecs is the in-run cancellation stride: counting workers poll the
// context's done channel once per this many records, so a cancelled count
// aborts mid-run instead of only at run boundaries while the per-record
// cost stays one local increment and mask.
const ctxCheckRecs = 8192

// addRecBytes and addRecU64 fold one record into a run map, reporting
// whether it was a new distinct key. The string form relies on the
// compiler's map[string(b)] key optimization for the duplicate case.
func addRecBytes(m map[string]int, rec []byte) bool {
	before := len(m)
	m[string(rec)]++
	return len(m) != before
}

func addRecU64(m map[uint64]int, rec []byte) bool {
	before := len(m)
	m[binary.LittleEndian.Uint64(rec)]++
	return len(m) != before
}

// countRuns is the shared, format-generic run-counting engine behind
// CountRuns and CountRunsU64.
func countRuns[K comparable](ctx context.Context, w *Writer, capN, workers int, add func(map[K]int, []byte) bool, emit func(run int, counts map[K]int) bool) (size int, within bool, err error) {
	if w.done {
		return 0, false, fmt.Errorf("spill: CountRuns after Cleanup")
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	workers = workpool.Resolve(workers, len(w.files))
	var (
		total    atomic.Int64 // distinct keys counted so far, across workers
		exceeded atomic.Bool  // cap proven breached
		stopped  atomic.Bool  // emit asked to stop, or the context fired
	)
	errs := make([]error, workers)
	panics := make([]any, workers)
	workpool.RunChunks(len(w.files), workers, func(wk, lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panics[wk] = r
				stopped.Store(true)
			}
		}()
		chunk := getBuf(w.cfg.Pool, w.chunkLen())
		defer putBuf(w.cfg.Pool, chunk)
		var m map[K]int
		var recs int
		for run := lo; run < hi; run++ {
			if exceeded.Load() || stopped.Load() {
				return
			}
			if done != nil {
				select {
				case <-done:
					errs[wk] = ctx.Err()
					stopped.Store(true)
					return
				default:
				}
			}
			if m == nil {
				m = make(map[K]int)
			} else {
				clear(m)
			}
			canceled := false
			aborted, err := w.scanRun(run, chunk, func(rec []byte) bool {
				if done != nil {
					if recs++; recs%ctxCheckRecs == 0 {
						select {
						case <-done:
							canceled = true
							return false
						default:
						}
					}
				}
				if add(m, rec) && capN >= 0 && total.Add(1) > int64(capN) {
					// This insert proved the global distinct count out of
					// bound (runs are disjoint, so the total is monotone).
					exceeded.Store(true)
					return false
				}
				return true
			})
			if err != nil {
				errs[wk] = err
				return
			}
			if canceled {
				errs[wk] = ctx.Err()
				stopped.Store(true)
				return
			}
			if aborted {
				return
			}
			if capN < 0 {
				total.Add(int64(len(m)))
			}
			// wmu serializes emit and the MaxRunEntries update (shard
			// writers are closed by count time, so the lock is otherwise
			// uncontended). The deferred unlock keeps the writer usable
			// when a panic in emit is recovered by the caller.
			cont := func() bool {
				w.wmu.Lock()
				defer w.wmu.Unlock()
				if len(m) > w.stats.MaxRunEntries {
					w.stats.MaxRunEntries = len(m)
				}
				if emit != nil {
					return emit(run, m)
				}
				return true
			}()
			if !cont {
				stopped.Store(true)
				return
			}
		}
	})
	for _, p := range panics {
		if p != nil {
			// Re-raise on the caller so its deferred Cleanup (and any outer
			// recovery) sees the panic exactly as in the sequential path.
			panic(p)
		}
	}
	for _, e := range errs {
		if e != nil {
			return 0, false, e
		}
	}
	if exceeded.Load() {
		return capN + 1, false, nil
	}
	return int(total.Load()), true, nil
}

// Stats returns the writer's accumulated counters. Call after the shards
// are closed (and after CountRuns for MaxRunEntries).
func (w *Writer) Stats() Stats {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.stats
}

// Dir exposes the private run directory; tests assert its lifecycle.
func (w *Writer) Dir() string { return w.dir }

// Cleanup closes every run file, and — when the writer owns them (created
// by NewWriter and not relocated by AdoptInto) — deletes the files and the
// private directory. It is idempotent and safe after partial construction,
// so callers defer it immediately after NewWriter — covering success,
// cap-abort, error and panic exits alike. On writers reopened with Open or
// relocated with AdoptInto it only closes descriptors: the adopted
// directory belongs to the artifact.
func (w *Writer) Cleanup() {
	if w.done {
		return
	}
	w.done = true
	for i, f := range w.files {
		if f != nil {
			f.Close()
			w.files[i] = nil
		}
	}
	if w.owns {
		w.fs.RemoveAll(w.dir)
	}
}

func getBuf(p BufPool, n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	return p.GetBytes(n)
}

func putBuf(p BufPool, b []byte) {
	if p != nil {
		p.PutBytes(b)
	}
}
