package spill

// MultiWriter is pure multiplexing: the run files it produces for each
// target must be byte-identical to what a standalone Writer with the same
// buffer size produces from the same record stream, per-target lifecycles
// must be independent (eager CleanupTarget, idempotent Cleanup), and the
// shared buffer budget must bound the per-run flush buffers across all
// targets together.

import (
	"bytes"
	"os"
	"testing"
)

// multiTargetShape is one heterogeneous target: its own width, fan-out and
// key population.
type multiTargetShape struct {
	width, runs, distinct int
}

var multiShapes = []multiTargetShape{
	{width: 6, runs: 3, distinct: 50},
	{width: 8, runs: 5, distinct: 200},
	{width: 10, runs: 4, distinct: 100},
}

func TestMultiWriterMatchesStandalone(t *testing.T) {
	const n = 5000
	recs := make([][][]byte, len(multiShapes))
	refs := make([]map[string]int, len(multiShapes))
	cfgs := make([]Config, len(multiShapes))
	for i, sh := range multiShapes {
		recs[i], refs[i] = genRecords(n, sh.distinct, sh.width, 0xA0^uint64(i))
		cfgs[i] = Config{RecWidth: sh.width, Runs: sh.runs}
	}
	mw := NewMultiWriter(cfgs, 8<<10)
	defer mw.Cleanup()
	ms := mw.Shard()
	for r := 0; r < n; r++ {
		for i := range multiShapes {
			ms.Add(i, recs[i][r])
		}
	}
	ms.Close()

	for i, sh := range multiShapes {
		if err := mw.Err(i); err != nil {
			t.Fatalf("target %d errored: %v", i, err)
		}
		w := mw.Writer(i)
		// The standalone oracle uses the exact buffer size the budget
		// slice handed the multiplexed target, so flush framing matches.
		solo, err := NewWriter(Config{RecWidth: sh.width, Runs: sh.runs, BufBytes: w.cfg.BufBytes})
		if err != nil {
			t.Fatal(err)
		}
		sw := solo.Shard()
		for _, rec := range recs[i] {
			sw.Add(rec)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		for run := 0; run < sh.runs; run++ {
			got, err := os.ReadFile(runPath(w.Dir(), run))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(runPath(solo.Dir(), run))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("target %d run %d: multiplexed file differs from standalone (%d vs %d bytes)",
					i, run, len(got), len(want))
			}
		}
		solo.Cleanup()
		counts := make(map[string]int)
		size, within, err := w.CountRuns(-1, 1, func(_ int, m map[string]int) bool {
			for k, c := range m {
				counts[k] = c
			}
			return true
		})
		if err != nil || !within || size != len(refs[i]) {
			t.Fatalf("target %d: size=%d within=%v err=%v, want %d", i, size, within, err, len(refs[i]))
		}
		for k, c := range refs[i] {
			if counts[k] != c {
				t.Fatalf("target %d: key %q = %d, want %d", i, k, counts[k], c)
			}
		}
	}

	// Per-target lifecycle: cleaning one target removes only its runs.
	dir0, dir1 := mw.Writer(0).Dir(), mw.Writer(1).Dir()
	mw.CleanupTarget(0)
	if _, err := os.Stat(dir0); !os.IsNotExist(err) {
		t.Fatalf("target 0 dir survives CleanupTarget: %v", err)
	}
	if _, err := os.Stat(dir1); err != nil {
		t.Fatalf("sibling dir removed by CleanupTarget(0): %v", err)
	}
	mw.Cleanup()
	mw.Cleanup() // idempotent
	if _, err := os.Stat(dir1); !os.IsNotExist(err) {
		t.Fatalf("target 1 dir survives Cleanup: %v", err)
	}
}

func TestMultiWriterBudgetShare(t *testing.T) {
	mk := func(n, runs, width int) []Config {
		cfgs := make([]Config, n)
		for i := range cfgs {
			cfgs[i] = Config{RecWidth: width, Runs: runs}
		}
		return cfgs
	}
	// 4 targets × 4 runs share 16 KiB: 1 KiB per run, rounded to records.
	mw := NewMultiWriter(mk(4, 4, 6), 16<<10)
	defer mw.Cleanup()
	for i := 0; i < 4; i++ {
		if got := mw.Writer(i).cfg.BufBytes; got != 1024-1024%6 {
			t.Fatalf("target %d BufBytes = %d, want %d", i, got, 1024-1024%6)
		}
	}
	// A budget below the floor clamps to multiBufMin, not to zero.
	low := NewMultiWriter(mk(2, 8, 8), 100)
	defer low.Cleanup()
	if got := low.Writer(0).cfg.BufBytes; got != multiBufMin {
		t.Fatalf("floored BufBytes = %d, want %d", got, multiBufMin)
	}
	// A huge budget caps at 64 KiB per run, like the standalone default.
	high := NewMultiWriter(mk(1, 1, 8), 1<<30)
	defer high.Cleanup()
	if got := high.Writer(0).cfg.BufBytes; got != 64<<10 {
		t.Fatalf("capped BufBytes = %d, want %d", got, 64<<10)
	}
	// An explicit per-target BufBytes wins over the budget share.
	cfgs := mk(2, 2, 8)
	cfgs[1].BufBytes = 2048
	mixed := NewMultiWriter(cfgs, 8<<10)
	defer mixed.Cleanup()
	if got := mixed.Writer(1).cfg.BufBytes; got != 2048 {
		t.Fatalf("explicit BufBytes overridden: %d, want 2048", got)
	}
}
