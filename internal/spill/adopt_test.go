package spill

import (
	"os"
	"path/filepath"
	"testing"
)

// spillRecords writes n records through one shard and returns the writer
// plus the reference counts.
func spillRecords(t *testing.T, n, distinct, width int) (*Writer, map[string]int) {
	t.Helper()
	recs, ref := genRecords(n, distinct, width, 0xADAF)
	w, err := NewWriter(Config{RecWidth: width, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, w, recs, 2)
	return w, ref
}

// countAll merges every run of w into one map.
func countAll(t *testing.T, w *Writer) map[string]int {
	t.Helper()
	got := make(map[string]int)
	_, _, err := w.CountRuns(-1, 1, func(run int, counts map[string]int) bool {
		for k, v := range counts {
			got[k] += v
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertCounts(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("distinct keys: got %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %x: got %d, want %d", k, got[k], v)
		}
	}
}

func TestAdoptIntoRelocatesAndSurvivesCleanup(t *testing.T) {
	w, ref := spillRecords(t, 4000, 300, 6)
	defer w.Cleanup()
	oldDir := w.Dir()

	dst := t.TempDir()
	if err := w.AdoptInto(dst); err != nil {
		t.Fatal(err)
	}
	if w.Dir() != dst {
		t.Fatalf("Dir() = %q, want %q", w.Dir(), dst)
	}
	if _, err := os.Stat(oldDir); !os.IsNotExist(err) {
		t.Fatalf("old spill dir %q not removed after adoption", oldDir)
	}
	// The open descriptors must keep serving the relocated runs.
	assertCounts(t, countAll(t, w), ref)

	// Cleanup of a non-owning writer closes descriptors but must leave the
	// adopted files on disk.
	w.Cleanup()
	for i := 0; i < w.NumRuns(); i++ {
		if _, err := os.Stat(runPath(dst, i)); err != nil {
			t.Fatalf("adopted run %d missing after Cleanup: %v", i, err)
		}
	}
}

func TestOpenServesAdoptedRuns(t *testing.T) {
	w, ref := spillRecords(t, 4000, 300, 6)
	defer w.Cleanup()

	dst := t.TempDir()
	if err := w.AdoptInto(dst); err != nil {
		t.Fatal(err)
	}
	runs, width := w.NumRuns(), 6

	// Record where each key routes before closing the original writer;
	// routing must be identical after reopen (deterministic hash).
	routes := make(map[string]int, len(ref))
	for k := range ref {
		routes[k] = w.RunOf([]byte(k))
	}
	w.Cleanup()

	r, err := Open(dst, width, runs, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Cleanup()
	assertCounts(t, countAll(t, r), ref)
	for k, run := range routes {
		if got := r.RunOf([]byte(k)); got != run {
			t.Fatalf("key %x routes to run %d after reopen, spilled into run %d", k, got, run)
		}
	}

	// Reopen cleanup must not delete the artifact's runs either.
	r.Cleanup()
	for i := 0; i < runs; i++ {
		if _, err := os.Stat(runPath(dst, i)); err != nil {
			t.Fatalf("run %d missing after reopen Cleanup: %v", i, err)
		}
	}
}

func TestSecondAdoptionCopiesInsteadOfStealing(t *testing.T) {
	w, ref := spillRecords(t, 2000, 150, 6)
	defer w.Cleanup()

	first, second := t.TempDir(), t.TempDir()
	if err := w.AdoptInto(first); err != nil {
		t.Fatal(err)
	}
	if err := w.AdoptInto(second); err != nil {
		t.Fatal(err)
	}
	// Both artifact directories must hold complete, independently readable
	// run sets.
	for _, dir := range []string{first, second} {
		r, err := Open(dir, 6, w.NumRuns(), true, nil, nil)
		if err != nil {
			t.Fatalf("open %s: %v", dir, err)
		}
		assertCounts(t, countAll(t, r), ref)
		r.Cleanup()
	}
}

func TestOpenRejectsTruncatedRun(t *testing.T) {
	w, _ := spillRecords(t, 1000, 80, 6)
	defer w.Cleanup()
	dst := t.TempDir()
	if err := w.AdoptInto(dst); err != nil {
		t.Fatal(err)
	}
	// Chop one byte off a run so its size is no longer a whole number of
	// records.
	path := runPath(dst, 0)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dst, 6, w.NumRuns(), true, nil, nil); err == nil {
		t.Fatal("Open accepted a truncated run file")
	}
}

func TestOpenMissingRun(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "run-0000"), make([]byte, 12), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 6, 2, true, nil, nil); err == nil {
		t.Fatal("Open accepted a directory missing run files")
	}
}
