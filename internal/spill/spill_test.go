package spill

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
)

// genRecords produces n fixed-width records drawn from a pool of distinct
// keys, plus the reference count map.
func genRecords(n, distinct, width int, seed uint64) (recs [][]byte, ref map[string]int) {
	rng := rand.New(rand.NewPCG(seed, 0x5B111))
	keys := make([][]byte, distinct)
	for i := range keys {
		k := make([]byte, width)
		for j := range k {
			k[j] = byte(rng.UintN(256))
		}
		// Distinctness by construction: stamp the index into the prefix.
		k[0], k[1] = byte(i), byte(i>>8)
		keys[i] = k
	}
	ref = make(map[string]int)
	recs = make([][]byte, n)
	for i := range recs {
		k := keys[rng.IntN(distinct)]
		recs[i] = k
		ref[string(k)]++
	}
	return recs, ref
}

func writeAll(t *testing.T, w *Writer, recs [][]byte, shards int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, shards)
	chunk := (len(recs) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := min(lo+chunk, len(recs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			sw := w.Shard()
			for _, r := range recs[lo:hi] {
				sw.Add(r)
			}
			errs[s] = sw.Close()
		}(s, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGroupByMatchesReference(t *testing.T) {
	const width = 6
	recs, ref := genRecords(20000, 900, width, 7)
	for _, runs := range []int{1, 4, 7} {
		for _, shards := range []int{1, 2, 8} {
			// workers exercises the parallel K-way count phase; results
			// must be identical for every worker count.
			workers := shards
			t.Run(fmt.Sprintf("runs=%d_shards=%d_workers=%d", runs, shards, workers), func(t *testing.T) {
				w, err := NewWriter(Config{RecWidth: width, Runs: runs, Dir: t.TempDir()})
				if err != nil {
					t.Fatal(err)
				}
				defer w.Cleanup()
				writeAll(t, w, recs, shards)
				got := make(map[string]int)
				seenRuns := 0
				size, within, err := w.CountRuns(-1, workers, func(run int, m map[string]int) bool {
					seenRuns++
					for k, c := range m {
						if _, dup := got[k]; dup {
							t.Fatalf("key emitted by two runs: partition not disjoint")
						}
						got[k] = c
					}
					return true
				})
				if err != nil || !within {
					t.Fatalf("CountRuns: size=%d within=%v err=%v", size, within, err)
				}
				if size != len(ref) {
					t.Fatalf("distinct = %d, want %d", size, len(ref))
				}
				if len(got) != len(ref) {
					t.Fatalf("emitted %d keys, want %d", len(got), len(ref))
				}
				for k, c := range ref {
					if got[k] != c {
						t.Fatalf("count mismatch for a key: got %d, want %d", got[k], c)
					}
				}
				st := w.Stats()
				// BytesWritten includes the 8-byte checksum header of each
				// flushed frame: payload bytes plus a whole number of headers.
				payload := int64(len(recs) * width)
				if st.RecordsSpilled != int64(len(recs)) || st.BytesWritten < payload || (st.BytesWritten-payload)%frameHdrLen != 0 {
					t.Fatalf("stats: %+v, want %d records / >= %d payload bytes plus whole frame headers", st, len(recs), payload)
				}
				if st.MaxRunEntries > len(ref) || (runs > 1 && st.MaxRunEntries == len(ref) && len(ref) > 100) {
					t.Fatalf("MaxRunEntries = %d of %d distinct across %d runs: partitioning is not spreading keys", st.MaxRunEntries, len(ref), runs)
				}
			})
		}
	}
}

// TestCapAbort pins the LabelSize cap contract: (cap+1, false) exactly when
// the true distinct count exceeds cap, at every boundary.
func TestCapAbort(t *testing.T) {
	const width = 4
	recs, ref := genRecords(5000, 137, width, 11)
	distinct := len(ref)
	for _, workers := range []int{1, 2, 8} {
		for _, cap := range []int{0, 1, distinct - 1, distinct, distinct + 1, 10 * distinct} {
			w, err := NewWriter(Config{RecWidth: width, Runs: 5, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			writeAll(t, w, recs, 2)
			size, within, err := w.CountRuns(cap, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if distinct > cap {
				if within || size != cap+1 {
					t.Fatalf("workers=%d cap=%d distinct=%d: got (%d, %v), want (%d, false)", workers, cap, distinct, size, within, cap+1)
				}
			} else if !within || size != distinct {
				t.Fatalf("workers=%d cap=%d distinct=%d: got (%d, %v), want (%d, true)", workers, cap, distinct, size, within, distinct)
			}
			w.Cleanup()
			assertEmptyDir(t, w, "after cap-abort cleanup")
		}
	}
}

// assertEmptyDir checks the writer's private run directory is gone.
func assertEmptyDir(t *testing.T, w *Writer, when string) {
	t.Helper()
	if _, err := os.Stat(w.Dir()); !os.IsNotExist(err) {
		t.Fatalf("%s: spill dir %s still exists (stat err %v)", when, w.Dir(), err)
	}
}

func TestCleanupOnSuccess(t *testing.T) {
	recs, _ := genRecords(1000, 50, 4, 3)
	parent := t.TempDir()
	w, err := NewWriter(Config{RecWidth: 4, Runs: 3, Dir: parent})
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, w, recs, 1)
	if _, _, err := w.CountRuns(-1, 1, nil); err != nil {
		t.Fatal(err)
	}
	w.Cleanup()
	w.Cleanup() // idempotent
	assertEmptyDir(t, w, "after success cleanup")
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("parent dir not empty after cleanup: %d entries", len(ents))
	}
}

// TestCleanupOnPanic pins the deferred-Cleanup idiom every caller uses: a
// panic anywhere between NewWriter and the final merge still removes the
// run files.
func TestCleanupOnPanic(t *testing.T) {
	recs, _ := genRecords(1000, 50, 4, 5)
	var w *Writer
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected the injected panic")
			}
		}()
		var err error
		w, err = NewWriter(Config{RecWidth: 4, Runs: 3, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Cleanup()
		sw := w.Shard()
		for i, r := range recs {
			if i == 500 {
				panic("injected mid-scan failure")
			}
			sw.Add(r)
		}
	}()
	assertEmptyDir(t, w, "after panic unwound through the deferred cleanup")
}

// countingPool counts buffer traffic to verify spill recycles through the
// pool rather than allocating per shard or per read.
type countingPool struct {
	mu         sync.Mutex
	gets, puts int
	free       [][]byte
}

func (p *countingPool) GetBytes(n int) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	for i, b := range p.free {
		if cap(b) >= n {
			p.free = append(p.free[:i], p.free[i+1:]...)
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (p *countingPool) PutBytes(b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	p.free = append(p.free, b)
}

func TestBuffersCycleThroughPool(t *testing.T) {
	recs, ref := genRecords(3000, 80, 4, 9)
	pool := &countingPool{}
	const runs = 4
	w, err := NewWriter(Config{RecWidth: 4, Runs: runs, Dir: t.TempDir(), Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cleanup()
	writeAll(t, w, recs, 2)
	size, _, err := w.CountRuns(-1, 1, nil)
	if err != nil || size != len(ref) {
		t.Fatalf("size=%d err=%v, want %d", size, err, len(ref))
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	// 2 shards × runs write buffers + 1 read chunk, all returned.
	want := 2*runs + 1
	if pool.gets != want || pool.puts != want {
		t.Fatalf("pool traffic gets=%d puts=%d, want %d each", pool.gets, pool.puts, want)
	}
}

func TestWriterRejectsBadConfig(t *testing.T) {
	if _, err := NewWriter(Config{RecWidth: 0, Runs: 1}); err == nil {
		t.Fatal("zero record width accepted")
	}
	if _, err := NewWriter(Config{RecWidth: 4, Runs: 0}); err == nil {
		t.Fatal("zero run count accepted")
	}
}

func TestAddRejectsWrongWidth(t *testing.T) {
	w, err := NewWriter(Config{RecWidth: 4, Runs: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cleanup()
	sw := w.Shard()
	sw.Add([]byte{1, 2, 3})
	if err := sw.Close(); err == nil {
		t.Fatal("wrong-width record accepted")
	}
}
