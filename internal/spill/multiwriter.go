package spill

// Shared-scan partitioning: a MultiWriter multiplexes several independent
// spill group-bys off one record stream, so a single dataset pass can
// partition every spilled set of a frontier instead of one pass per set.
// Each target keeps its own Writer — its own run directory, record width,
// run count and framed layout — and the run files it produces are
// byte-identical to the ones a standalone per-set pass would write, so the
// counting side (CountRuns/CountRunsU64) needs no changes at all.
//
// Failure isolation is per target: a target whose run files cannot be
// created, or whose shard hits a write error mid-pass, is marked failed
// and stops receiving records on every shard, while sibling targets keep
// partitioning. The caller inspects Err(i) after the pass and degrades
// only the failed sets.

import (
	"sync"
	"sync/atomic"
)

// multiBufMin floors the shared-budget per-run buffer: below this, flush
// frames degrade into tiny writes whose 8-byte headers dominate. A frontier
// that cannot afford even these floors degrades gracefully — the budget is
// a target, and the floor is the same kind of backstop as maxSpillRuns.
const multiBufMin = 512

// MultiWriter owns one spill Writer per target set plus the per-target
// error state of a shared partition pass.
type MultiWriter struct {
	writers []*Writer
	failed  []atomic.Bool
	emu     sync.Mutex
	errs    []error
}

// NewMultiWriter creates one Writer per config. bufBudget, when positive,
// bounds the total flush-buffer bytes one MultiShard holds live across all
// targets: every config with BufBytes 0 gets an equal per-run share of the
// budget (clamped to [multiBufMin, 64KiB]; NewWriter then rounds to whole
// records). A config whose writer cannot be created marks only that target
// failed — NewMultiWriter itself never fails, so one bad target cannot
// abort a whole frontier.
func NewMultiWriter(cfgs []Config, bufBudget int64) *MultiWriter {
	mw := &MultiWriter{
		writers: make([]*Writer, len(cfgs)),
		failed:  make([]atomic.Bool, len(cfgs)),
		errs:    make([]error, len(cfgs)),
	}
	if bufBudget > 0 {
		totalRuns := 0
		for _, cfg := range cfgs {
			totalRuns += cfg.Runs
		}
		share := int(bufBudget / int64(max(totalRuns, 1)))
		share = min(max(share, multiBufMin), 64<<10)
		for i := range cfgs {
			if cfgs[i].BufBytes == 0 {
				cfgs[i].BufBytes = share
			}
		}
	}
	for i, cfg := range cfgs {
		w, err := NewWriter(cfg)
		if err != nil {
			mw.setErr(i, err)
			continue
		}
		mw.writers[i] = w
	}
	return mw
}

// NumTargets reports how many target sets the pass partitions.
func (mw *MultiWriter) NumTargets() int { return len(mw.writers) }

// Writer exposes target i's spill writer for counting after the pass; nil
// when the target failed at creation.
func (mw *MultiWriter) Writer(i int) *Writer { return mw.writers[i] }

// Err reports the first error target i hit (creation or shard write), or
// nil if the target's runs are complete and countable.
func (mw *MultiWriter) Err(i int) error {
	mw.emu.Lock()
	defer mw.emu.Unlock()
	return mw.errs[i]
}

// setErr records target i's first error and flags it failed so every shard
// stops spending key computation and buffer space on it.
func (mw *MultiWriter) setErr(i int, err error) {
	mw.emu.Lock()
	if mw.errs[i] == nil {
		mw.errs[i] = err
	}
	mw.emu.Unlock()
	mw.failed[i].Store(true)
}

// CleanupTarget releases target i's run files and directory; idempotent.
// Callers clean each target as soon as its runs are counted so a frontier's
// disk footprint is one target's runs past the partition phase, not all of
// them until the frontier finishes.
func (mw *MultiWriter) CleanupTarget(i int) {
	if w := mw.writers[i]; w != nil {
		w.Cleanup()
	}
}

// Cleanup releases every target; idempotent, safe to defer right after
// NewMultiWriter (covers error and panic exits like Writer.Cleanup does).
func (mw *MultiWriter) Cleanup() {
	for i := range mw.writers {
		mw.CleanupTarget(i)
	}
}

// Shard returns a per-goroutine view multiplexing one ShardWriter per live
// target. Like ShardWriter, a MultiShard is not safe for concurrent use,
// but any number of them may add concurrently.
func (mw *MultiWriter) Shard() *MultiShard {
	ms := &MultiShard{mw: mw, shards: make([]*ShardWriter, len(mw.writers))}
	for i, w := range mw.writers {
		if w != nil && !mw.failed[i].Load() {
			ms.shards[i] = w.Shard()
		}
	}
	return ms
}

// MultiShard buffers one goroutine's records for every target of a shared
// partition pass.
type MultiShard struct {
	mw     *MultiWriter
	shards []*ShardWriter
}

// Failed reports whether target i is dead — creation failed or any shard
// hit a write error — so callers skip computing its keys entirely.
func (ms *MultiShard) Failed(i int) bool {
	return ms.shards[i] == nil || ms.mw.failed[i].Load()
}

// Add routes one record to target i. Errors stay inside the target: the
// first write failure flags it for every shard and later Adds no-op.
func (ms *MultiShard) Add(i int, rec []byte) {
	s := ms.shards[i]
	if s == nil {
		return
	}
	s.Add(rec)
	if s.err != nil {
		ms.mw.setErr(i, s.err)
	}
}

// AddU64 routes one uint64 record (8-byte little-endian) to target i.
func (ms *MultiShard) AddU64(i int, key uint64) {
	s := ms.shards[i]
	if s == nil {
		return
	}
	s.AddU64(key)
	if s.err != nil {
		ms.mw.setErr(i, s.err)
	}
}

// Close flushes and releases every per-target shard, recording any flush
// error against its target. It must be called (even after errors) before
// any target is counted.
func (ms *MultiShard) Close() {
	for i, s := range ms.shards {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil {
			ms.mw.setErr(i, err)
		}
		ms.shards[i] = nil
	}
}
