package spill

// Tests for the uint64 record format and the parallel K-way run-counting
// phase: format round trips, partition-routing consistency, and the
// temp-file lifecycle under success, cap-abort and injected panics with
// multiple counting workers.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
)

// genU64 produces n uint64 records drawn from a pool of distinct keys,
// plus the reference count map.
func genU64(n, distinct int, seed uint64) (keys []uint64, ref map[uint64]int) {
	rng := rand.New(rand.NewPCG(seed, 0x64B17))
	pool := make([]uint64, distinct)
	for i := range pool {
		pool[i] = rng.Uint64()<<16 | uint64(i) // distinct by construction
	}
	ref = make(map[uint64]int)
	keys = make([]uint64, n)
	for i := range keys {
		k := pool[rng.IntN(distinct)]
		keys[i] = k
		ref[k]++
	}
	return keys, ref
}

func TestGroupByU64MatchesReference(t *testing.T) {
	keys, ref := genU64(20000, 700, 13)
	for _, runs := range []int{1, 5} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("runs=%d_workers=%d", runs, workers), func(t *testing.T) {
				w, err := NewWriter(Config{RecWidth: 8, Runs: runs, Dir: t.TempDir()})
				if err != nil {
					t.Fatal(err)
				}
				defer w.Cleanup()
				var wg sync.WaitGroup
				errs := make([]error, 2)
				for s := 0; s < 2; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						sw := w.Shard()
						for i := s; i < len(keys); i += 2 {
							sw.AddU64(keys[i])
						}
						errs[s] = sw.Close()
					}(s)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						t.Fatal(err)
					}
				}
				got := make(map[uint64]int)
				size, within, err := w.CountRunsU64(-1, workers, func(run int, m map[uint64]int) bool {
					for k, c := range m {
						if _, dup := got[k]; dup {
							t.Fatalf("key emitted by two runs: partition not disjoint")
						}
						if w.RunOfU64(k) != run {
							t.Fatalf("RunOfU64 = %d for a key counted in run %d", w.RunOfU64(k), run)
						}
						got[k] = c
					}
					return true
				})
				if err != nil || !within || size != len(ref) {
					t.Fatalf("CountRunsU64: size=%d within=%v err=%v, want %d distinct", size, within, err, len(ref))
				}
				for k, c := range ref {
					if got[k] != c {
						t.Fatalf("key %d: got count %d, want %d", k, got[k], c)
					}
				}
			})
		}
	}
}

// TestU64CapAbort pins the parallel cap contract on the uint64 format at
// every boundary, for 1 and many counting workers.
func TestU64CapAbort(t *testing.T) {
	keys, ref := genU64(6000, 211, 17)
	distinct := len(ref)
	for _, workers := range []int{1, 8} {
		for _, cap := range []int{0, distinct - 1, distinct, distinct + 1} {
			w, err := NewWriter(Config{RecWidth: 8, Runs: 6, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			sw := w.Shard()
			for _, k := range keys {
				sw.AddU64(k)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			size, within, err := w.CountRunsU64(cap, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if distinct > cap {
				if within || size != cap+1 {
					t.Fatalf("workers=%d cap=%d: got (%d, %v), want (%d, false)", workers, cap, size, within, cap+1)
				}
			} else if !within || size != distinct {
				t.Fatalf("workers=%d cap=%d: got (%d, %v), want (%d, true)", workers, cap, size, within, distinct)
			}
			w.Cleanup()
			assertEmptyDir(t, w, "after u64 cap-abort cleanup")
		}
	}
}

// TestScanRunRoundTrip pins the merge-on-read reading surface: ScanRun
// streams exactly the records of one run, every record routes back to its
// run via RunOf, and concatenating all runs reproduces the reference
// multiset.
func TestScanRunRoundTrip(t *testing.T) {
	const width = 5
	recs, ref := genRecords(8000, 300, width, 21)
	w, err := NewWriter(Config{RecWidth: width, Runs: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cleanup()
	writeAll(t, w, recs, 2)
	got := make(map[string]int)
	for run := 0; run < w.NumRuns(); run++ {
		if err := w.ScanRun(run, func(rec []byte) bool {
			if w.RunOf(rec) != run {
				t.Fatalf("record in run %d routes to run %d", run, w.RunOf(rec))
			}
			got[string(rec)]++
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(ref) {
		t.Fatalf("scanned %d distinct records, want %d", len(got), len(ref))
	}
	for k, c := range ref {
		if got[k] != c {
			t.Fatalf("record multiplicity mismatch: got %d, want %d", got[k], c)
		}
	}
}

// TestParallelCountLifecycle pins the temp-file lifecycle of parallel run
// counting: the private directory is removed after a successful count,
// after a cap-abort, and when a panic injected into emit unwinds through
// the caller's deferred Cleanup — with multiple counting workers in every
// case.
func TestParallelCountLifecycle(t *testing.T) {
	const workers = 4
	build := func(t *testing.T) *Writer {
		t.Helper()
		recs, _ := genRecords(4000, 260, 4, 23)
		w, err := NewWriter(Config{RecWidth: 4, Runs: 8, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		writeAll(t, w, recs, 2)
		return w
	}

	t.Run("success", func(t *testing.T) {
		w := build(t)
		if _, _, err := w.CountRuns(-1, workers, nil); err != nil {
			t.Fatal(err)
		}
		w.Cleanup()
		assertEmptyDir(t, w, "after parallel success")
	})

	t.Run("cap-abort", func(t *testing.T) {
		w := build(t)
		size, within, err := w.CountRuns(3, workers, nil)
		if err != nil || within || size != 4 {
			t.Fatalf("cap-abort: got (%d, %v, %v), want (4, false, nil)", size, within, err)
		}
		w.Cleanup()
		assertEmptyDir(t, w, "after parallel cap-abort")
	})

	t.Run("panic", func(t *testing.T) {
		var w *Writer
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("expected the injected panic to reach the caller")
				}
			}()
			w = build(t)
			defer w.Cleanup()
			w.CountRuns(-1, workers, func(run int, m map[string]int) bool {
				panic("injected mid-merge failure")
			})
		}()
		assertEmptyDir(t, w, "after panic unwound through the deferred cleanup")
		// The writer must stay usable for error reporting after a recovered
		// panic (no lock left held).
		if _, _, err := w.CountRuns(-1, workers, nil); err == nil {
			t.Fatal("CountRuns after Cleanup should error")
		}
	})
}
