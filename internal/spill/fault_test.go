package spill

// Fault-injection tests for the run files' durability seams: the EXDEV
// copy fallback of AdoptInto, frame-corruption detection, and write-fault
// propagation through shards.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pcbl/internal/iofault"
)

// spillRecordsFS is spillRecords with the I/O routed through fsys.
func spillRecordsFS(t *testing.T, fsys iofault.FS, n, distinct, width int) (*Writer, map[string]int) {
	t.Helper()
	recs, ref := genRecords(n, distinct, width, 0xADAF)
	w, err := NewWriter(Config{RecWidth: width, Runs: 5, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, w, recs, 2)
	return w, ref
}

// TestAdoptIntoCopyFallbackIsDurable forces every rename to fail — the
// EXDEV case, dst on another filesystem — so AdoptInto must fall back to
// copying. The copies must be fsynced before the source directory is
// deleted (the sync counter proves the ordering), and the adopted runs
// must count identically.
func TestAdoptIntoCopyFallbackIsDurable(t *testing.T) {
	ffs := iofault.NewFaultFS(nil)
	w, ref := spillRecordsFS(t, ffs, 4000, 300, 6)
	defer w.Cleanup()
	oldDir := w.Dir()

	syncsBefore := ffs.Counts()[iofault.OpSync]
	ffs.FailFrom(iofault.OpRename, 1, errors.New("simulated EXDEV"))
	dst := t.TempDir()
	if err := w.AdoptInto(dst); err != nil {
		t.Fatalf("AdoptInto with rename disabled: %v", err)
	}
	if w.Dir() != dst {
		t.Fatalf("Dir() = %q, want %q", w.Dir(), dst)
	}
	if _, err := os.Stat(oldDir); !os.IsNotExist(err) {
		t.Fatalf("source dir still present after copy adoption: %v", err)
	}
	// Each of the 5 runs is fsynced once by copyRun and once by the
	// adoption durability barrier; either way, at least one sync per run
	// must have happened before AdoptInto returned (and so before the
	// source delete that follows the barrier).
	if syncs := ffs.Counts()[iofault.OpSync] - syncsBefore; syncs < int64(w.NumRuns()) {
		t.Fatalf("only %d fsyncs during copy adoption of %d runs", syncs, w.NumRuns())
	}
	for i := 0; i < w.NumRuns(); i++ {
		if _, err := os.Stat(filepath.Join(dst, filepath.Base(runPath(dst, i)))); err != nil {
			t.Fatalf("adopted run %d missing: %v", i, err)
		}
	}
	assertCounts(t, countAll(t, w), ref)
}

// TestAdoptIntoCopyFaultKeepsSource: when the copy itself fails (create or
// write fault mid-copy), AdoptInto must return an error and the writer
// must keep serving from the source runs — a failed adoption loses nothing.
func TestAdoptIntoCopyFaultKeepsSource(t *testing.T) {
	for _, op := range []iofault.Op{iofault.OpCreate, iofault.OpWrite, iofault.OpSync} {
		ffs := iofault.NewFaultFS(nil)
		w, ref := spillRecordsFS(t, ffs, 4000, 300, 6)
		ffs.FailFrom(iofault.OpRename, 1, errors.New("simulated EXDEV"))
		ffs.FailAt(op, ffs.Counts()[op]+2, nil) // second occurrence inside the copy
		if err := w.AdoptInto(t.TempDir()); err == nil {
			t.Fatalf("op %v: AdoptInto succeeded despite copy fault", op)
		}
		ffs.Reset()
		assertCounts(t, countAll(t, w), ref)
		w.Cleanup()
	}
}

// TestScanDetectsFrameCorruption flips one payload byte in a framed run
// and asserts the scan reports a typed corruption error instead of
// feeding the damaged records to the callback.
func TestScanDetectsFrameCorruption(t *testing.T) {
	w, _ := spillRecords(t, 4000, 300, 6)
	defer w.Cleanup()
	// Corrupt a payload byte (past the 8-byte header) of the largest run.
	var victim string
	for i := 0; i < w.NumRuns(); i++ {
		p := runPath(w.Dir(), i)
		if fi, err := os.Stat(p); err == nil && fi.Size() > frameHdrLen {
			victim = p
			break
		}
	}
	if victim == "" {
		t.Fatal("no non-empty run to corrupt")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHdrLen+len(data)/2%max(len(data)-frameHdrLen, 1)] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = w.CountRuns(-1, 2, nil)
	if err == nil {
		t.Fatal("CountRuns accepted a corrupted frame")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption error not typed: %v", err)
	}
}

// TestShardWritePropagatesFault: a write fault during sharding surfaces
// from ShardWriter.Close, not as a panic or silent data loss.
func TestShardWritePropagatesFault(t *testing.T) {
	ffs := iofault.NewFaultFS(nil)
	w, err := NewWriter(Config{RecWidth: 6, Runs: 3, BufBytes: 64, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cleanup()
	ffs.FailFrom(iofault.OpWrite, 2, nil)
	recs, _ := genRecords(2000, 100, 6, 0xBEE)
	s := w.Shard()
	for _, r := range recs {
		s.Add(r)
	}
	if err := s.Close(); !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("shard close after write fault: %v, want ErrInjected", err)
	}
}

// TestMultiWriterWriteFaultIsolatesTarget injects a single write fault
// during a shared partition pass: exactly one target must record the
// error (and stop receiving records), while every sibling's runs still
// count exactly against its reference.
func TestMultiWriterWriteFaultIsolatesTarget(t *testing.T) {
	const n, distinct, width = 4000, 150, 6
	ffs := iofault.NewFaultFS(nil)
	cfgs := make([]Config, 3)
	streams := make([][][]byte, 3)
	refs := make([]map[string]int, 3)
	for i := range cfgs {
		// Tiny buffers force flushes mid-pass, so the fault lands while
		// siblings still have records in flight.
		cfgs[i] = Config{RecWidth: width, Runs: 3, BufBytes: 64, FS: ffs}
		streams[i], refs[i] = genRecords(n, distinct, width, 0xF417+uint64(i))
	}
	mw := NewMultiWriter(cfgs, 0)
	defer mw.Cleanup()
	ffs.FailAt(iofault.OpWrite, ffs.Counts()[iofault.OpWrite]+5, nil)
	ms := mw.Shard()
	for r := 0; r < n; r++ {
		for i := range cfgs {
			ms.Add(i, streams[i][r])
		}
	}
	ms.Close()

	failed := -1
	for i := range cfgs {
		if err := mw.Err(i); err != nil {
			if !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("target %d: error %v, want ErrInjected", i, err)
			}
			if failed != -1 {
				t.Fatalf("targets %d and %d both failed on one injected fault", failed, i)
			}
			failed = i
		}
	}
	if failed == -1 {
		t.Fatal("no target recorded the injected write fault")
	}
	for i := range cfgs {
		if i == failed {
			continue
		}
		counts := make(map[string]int)
		size, _, err := mw.Writer(i).CountRuns(-1, 1, func(_ int, m map[string]int) bool {
			for k, c := range m {
				counts[k] = c
			}
			return true
		})
		if err != nil {
			t.Fatalf("sibling %d count after target %d failed: %v", i, failed, err)
		}
		if size != len(refs[i]) {
			t.Fatalf("sibling %d: size %d, want %d", i, size, len(refs[i]))
		}
		for k, c := range refs[i] {
			if counts[k] != c {
				t.Fatalf("sibling %d: key %q = %d, want %d", i, k, counts[k], c)
			}
		}
	}
}

// TestMultiWriterCreateFaultIsolatesTarget fails one target's run-file
// creation: NewMultiWriter must still return a usable writer where only
// that target is nil/failed and the siblings partition and count exactly.
func TestMultiWriterCreateFaultIsolatesTarget(t *testing.T) {
	const n, distinct, width = 2000, 80, 6
	ffs := iofault.NewFaultFS(nil)
	cfgs := make([]Config, 3)
	streams := make([][][]byte, 3)
	refs := make([]map[string]int, 3)
	for i := range cfgs {
		cfgs[i] = Config{RecWidth: width, Runs: 3, FS: ffs}
		streams[i], refs[i] = genRecords(n, distinct, width, 0xC4EA7+uint64(i))
	}
	// Runs are created target by target: occurrence 4 is the middle
	// target's first run file.
	ffs.FailAt(iofault.OpCreate, ffs.Counts()[iofault.OpCreate]+4, nil)
	mw := NewMultiWriter(cfgs, 0)
	defer mw.Cleanup()
	if mw.Writer(1) != nil || !errors.Is(mw.Err(1), iofault.ErrInjected) {
		t.Fatalf("target 1: writer %v err %v, want nil writer with ErrInjected", mw.Writer(1), mw.Err(1))
	}
	ms := mw.Shard()
	if !ms.Failed(1) {
		t.Fatal("shard does not report the dead target as failed")
	}
	for r := 0; r < n; r++ {
		for i := range cfgs {
			ms.Add(i, streams[i][r]) // adds to the dead target are no-ops
		}
	}
	ms.Close()
	for _, i := range []int{0, 2} {
		if err := mw.Err(i); err != nil {
			t.Fatalf("sibling %d errored: %v", i, err)
		}
		size, _, err := mw.Writer(i).CountRuns(-1, 1, nil)
		if err != nil || size != len(refs[i]) {
			t.Fatalf("sibling %d: size=%d err=%v, want %d", i, size, err, len(refs[i]))
		}
	}
}
