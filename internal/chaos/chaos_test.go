package chaos

// Seeded smoke soak: a handful of chaos cycles must hold every invariant,
// leak no goroutines, and actually exercise chaos (nonzero counters in
// aggregate). CI runs this under -race; longer soaks reuse Soak directly
// with a bigger cycle count.

import (
	"os"
	"strconv"
	"testing"
	"time"

	"pcbl/internal/testutil"
)

func TestSoakSmoke(t *testing.T) {
	testutil.CheckGoroutines(t)
	cycles := 6
	if v := os.Getenv("PCBL_CHAOS_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("PCBL_CHAOS_CYCLES=%q: %v", v, err)
		}
		cycles = n
	}
	rep, err := Soak(Config{
		Seed:     0x5555,
		Cycles:   cycles,
		Duration: 45 * time.Second,
		Dir:      t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("soak: %v (report: %s)", err, rep)
	}
	if rep.Cycles == 0 {
		t.Fatal("soak ran zero cycles")
	}
	if rep.ServeOK == 0 {
		t.Fatalf("soak verified zero served answers: %s", rep)
	}
	t.Logf("soak report: %s", rep)
}

// TestSoakSeedsDisjoint runs two more single-cycle soaks on different
// seeds so the smoke doesn't overfit one random trajectory.
func TestSoakSeedsDisjoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: one soak seed is enough")
	}
	for _, seed := range []uint64{0x1D, 0xBEEF} {
		rep, err := Soak(Config{Seed: seed, Cycles: 1, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %#x: %v (report: %s)", seed, err, rep)
		}
	}
}
