// Package chaos is the randomized robustness harness: seeded soak cycles
// drive the whole pipeline — build → save → merge → serve — under
// concurrent cancellation, injected disk faults (ENOSPC, EIO, scripted
// crash points) and client overload, asserting after every step that the
// engine either answered bit-identically to an in-memory oracle or failed
// with the typed error the contract names — never a torn label, a wrong
// count, or a leaked spill file.
//
// The harness is a library so both the test suite (seeded smoke under
// -race) and longer out-of-band soaks share one implementation. All
// randomness flows from Config.Seed: a failing run is re-playable by seed.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pcbl/internal/artifact"
	"pcbl/internal/core"
	"pcbl/internal/dataset"
	"pcbl/internal/iofault"
	"pcbl/internal/lattice"
	"pcbl/internal/serve"
	"pcbl/internal/spill"
)

// Config parameterizes one soak.
type Config struct {
	// Seed drives every random choice; equal seeds replay equal soaks
	// (modulo goroutine scheduling, which the invariants are robust to).
	Seed uint64
	// Cycles is the number of build→save→merge→serve cycles; 0 means 3.
	Cycles int
	// Duration, when positive, stops the soak early once exceeded
	// (checked between cycles) so CI smoke stays bounded.
	Duration time.Duration
	// Dir is the scratch root for spill and artifact directories;
	// empty means a fresh temp directory that the soak removes.
	Dir string
	// Logf, when non-nil, receives per-cycle progress lines.
	Logf func(format string, args ...any)
}

// Report totals what a soak observed. Counters are informational — the
// pass/fail signal is Soak's error — but a healthy soak shows nonzero
// chaos: cancellations that fired, fallbacks that degraded, sheds that
// shed. A soak whose counters are all zero exercised nothing.
type Report struct {
	Cycles           int
	BuildCancels     int64 // builds aborted by their context, typed
	SpillFallbacks   int64 // spill scans degraded to in-memory (EIO/ENOSPC)
	NoSpaceFallbacks int64 // the ENOSPC-classified subset
	SaveFailures     int64 // chaotic saves that failed typed-or-crash-safe
	SaveNoSpace      int64 // the spill.ErrNoSpace-classified subset
	Kills            int64 // scripted crash points that fired
	Merges           int64 // merges that committed
	MergeFailures    int64 // merges that failed with the base left serving
	ServeOK          int64 // 200s, every one verified against the oracle
	ServeShed        int64 // 429s and 503s under overload or timeout
	ServeClientDrops int64 // client-side cancellations mid-request
}

func (r Report) String() string {
	return fmt.Sprintf("cycles=%d buildCancels=%d spillFallbacks=%d (enospc=%d) "+
		"saveFailures=%d (enospc=%d kills=%d) merges=%d mergeFailures=%d "+
		"serveOK=%d serveShed=%d serveClientDrops=%d",
		r.Cycles, r.BuildCancels, r.SpillFallbacks, r.NoSpaceFallbacks,
		r.SaveFailures, r.SaveNoSpace, r.Kills, r.Merges, r.MergeFailures,
		r.ServeOK, r.ServeShed, r.ServeClientDrops)
}

// faultableOps are the operation classes a chaotic cycle may fault.
var faultableOps = []iofault.Op{iofault.OpCreate, iofault.OpWrite, iofault.OpRead, iofault.OpMkdir}

// Soak runs the configured number of chaos cycles and returns the first
// invariant violation, or nil with the totals when every cycle held.
func Soak(cfg Config) (Report, error) {
	var rep Report
	if cfg.Cycles == 0 {
		cfg.Cycles = 5
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "pcbl-chaos-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xC4A05))
	start := time.Now()
	for c := 0; c < cfg.Cycles; c++ {
		if cfg.Duration > 0 && c > 0 && time.Since(start) > cfg.Duration {
			logf("chaos: duration bound hit after %d cycles", c)
			break
		}
		if err := cycle(cfg, rng, c, &rep, logf); err != nil {
			return rep, fmt.Errorf("chaos seed %#x cycle %d: %w", cfg.Seed, c, err)
		}
		rep.Cycles++
	}
	return rep, nil
}

// cycle runs one build→save→merge→serve pass inside its own scratch dir.
func cycle(cfg Config, rng *rand.Rand, c int, rep *Report, logf func(string, ...any)) error {
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("cycle-%03d", c))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rows := 1200 + rng.IntN(1200)
	domain := 120 + rng.IntN(200)
	d := mkDataset(rng, rows, 4, domain)
	cut := rows - 80 - rng.IntN(80)
	base, err := d.Slice(0, cut)
	if err != nil {
		return err
	}
	delta, err := d.Slice(cut, rows)
	if err != nil {
		return err
	}
	s := lattice.FullSet(4)
	baseOracle := core.BuildLabelOpts(base, s, core.CountOptions{})
	fullOracle := core.BuildLabelOpts(d, s, core.CountOptions{})
	probes := mkProbes(rng, d, s, 24)

	if err := buildPhase(rng, base, s, baseOracle, probes, dir, rep); err != nil {
		return fmt.Errorf("build: %w", err)
	}
	artDir, merged, err := artifactPhase(rng, base, delta, s, dir, rep, logf)
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	oracle := baseOracle
	if merged {
		oracle = fullOracle
	}
	if err := servePhase(rng, artDir, d, oracle, probes, rep); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	logf("chaos: cycle %d ok (%s)", c, rep)
	return nil
}

// buildPhase builds the base label under a tight memory budget with a
// randomly faulted filesystem and, half the time, a context that fires
// mid-build. A finished build must answer every probe like the oracle; an
// aborted one must carry the typed context error. Either way the spill
// scratch ends empty.
func buildPhase(rng *rand.Rand, d *dataset.Dataset, s lattice.AttrSet,
	oracle *core.Label, probes []probe, dir string, rep *Report) error {
	spillDir := filepath.Join(dir, "spill")
	if err := os.MkdirAll(spillDir, 0o755); err != nil {
		return err
	}
	ffs := iofault.NewFaultFS(nil)
	switch rng.IntN(3) {
	case 1:
		ffs.NoSpaceFrom(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(12)))
	case 2:
		ffs.FailFrom(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(12)), nil)
	}
	// Half the builds race a canceller. One sixth arrive with the context
	// already fired — the entry check must refuse them every time. A third
	// race a concurrent spin-yield canceller: timer-based contexts can't
	// land inside a sub-millisecond build (runtime timer granularity is
	// coarser than the build), and these cycles' datasets fit one scan
	// block, so a mid-scan poll may never run before the build finishes —
	// whether the spin cancel lands is scheduling luck, and both outcomes
	// (typed abort, completed label) are legal. The pre-fired arm is what
	// guarantees the cancel path runs every soak.
	ctx := context.Context(nil)
	switch rng.IntN(6) {
	case 0: // pre-fired: refused at the entry check before any work
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		ctx = cctx
	case 1, 2: // spin canceller racing the build
		cctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ctx = cctx
		delay := time.Duration(rng.IntN(1_200_000)) * time.Nanosecond
		go func() {
			target := time.Now().Add(delay)
			for time.Now().Before(target) {
				runtime.Gosched()
			}
			cancel()
		}()
	}
	var stats core.ScanStats
	l, err := core.BuildLabelOptsCtx(ctx, d, s, core.CountOptions{
		Workers: 1 + rng.IntN(4), MemBudget: 16 << 10,
		SpillDir: spillDir, FS: ffs, Stats: &stats,
	})
	switch {
	case err != nil:
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("build failed with untyped error %v (faults must degrade, not fail)", err)
		}
		rep.BuildCancels++
	default:
		for i, p := range probes {
			want, wok := oracle.Count(p.pat)
			got, gok, cerr := l.CountCtx(nil, p.pat)
			if cerr != nil || got != want || gok != wok {
				l.ReleaseSpill()
				return fmt.Errorf("probe %d: chaotic build answered (%d,%v,%v), oracle (%d,%v)",
					i, got, gok, cerr, want, wok)
			}
		}
		l.ReleaseSpill()
	}
	rep.SpillFallbacks += stats.SpillFallbacks
	rep.NoSpaceFallbacks += stats.SpillNoSpaceFallbacks
	return assertEmptyDir(spillDir)
}

// artifactPhase saves the base label under chaos, retries cleanly when the
// chaotic save failed, then merges the delta under chaos. It returns the
// directory holding a valid artifact and whether the merge committed.
func artifactPhase(rng *rand.Rand, base, delta *dataset.Dataset, s lattice.AttrSet,
	dir string, rep *Report, logf func(string, ...any)) (string, bool, error) {
	l := core.BuildLabelOpts(base, s, core.CountOptions{
		MemBudget: 16 << 10, SpillDir: filepath.Join(dir, "build-spill"),
	})
	defer l.ReleaseSpill()

	artDir := filepath.Join(dir, "artifact")
	ffs := iofault.NewFaultFS(nil)
	switch rng.IntN(4) {
	case 1:
		ffs.NoSpaceFrom(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(16)))
	case 2:
		ffs.FailFrom(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(16)), nil)
	case 3:
		ffs.KillAt(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(16)))
	}
	saveErr := artifact.SaveFS(l, artDir, ffs)
	if ffs.Killed() {
		rep.Kills++
		if saveErr == nil {
			return "", false, errors.New("save swallowed a scripted crash")
		}
	}
	if saveErr != nil {
		rep.SaveFailures++
		if errors.Is(saveErr, spill.ErrNoSpace) {
			rep.SaveNoSpace++
		}
		// Crash safety: an aborted save left no committed artifact.
		if _, _, openErr := artifact.Open(artDir); openErr == nil {
			return "", false, fmt.Errorf("failed save (%v) left an openable artifact", saveErr)
		}
		os.RemoveAll(artDir)
		if err := artifact.Save(l, artDir); err != nil {
			return "", false, fmt.Errorf("clean retry save: %w", err)
		}
	}
	_, m, err := artifact.Open(artDir)
	if err != nil {
		return "", false, err
	}

	dl := core.BuildLabelOpts(delta, s, core.CountOptions{})
	mffs := iofault.NewFaultFS(nil)
	switch rng.IntN(3) {
	case 1:
		mffs.NoSpaceFrom(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(16)))
	case 2:
		mffs.KillAt(faultableOps[rng.IntN(len(faultableOps))], 1+int64(rng.IntN(16)))
	}
	_, mergeErr := artifact.MergeIntoFS(artDir, dl, m, mffs)
	if mffs.Killed() {
		rep.Kills++
	}
	if mergeErr != nil {
		rep.MergeFailures++
		// The previous generation must still open and serve.
		if _, om, openErr := artifact.Open(artDir); openErr != nil {
			return "", false, fmt.Errorf("failed merge (%v) broke the base artifact: %v", mergeErr, openErr)
		} else if om.Epoch != m.Epoch {
			return "", false, fmt.Errorf("failed merge moved the epoch %d -> %d", m.Epoch, om.Epoch)
		}
		return artDir, false, nil
	}
	rep.Merges++
	return artDir, true, nil
}

// servePhase serves the artifact under tight admission limits and hammers
// it with concurrent clients whose requests randomly cancel. Every 200
// must match the oracle; 429/503 are the contract's overload answers;
// anything else fails the soak.
func servePhase(rng *rand.Rand, artDir string, d *dataset.Dataset,
	oracle *core.Label, probes []probe, rep *Report) error {
	l, _, err := artifact.Open(artDir)
	if err != nil {
		return err
	}
	defer l.ReleaseSpill()
	h := serve.NewHandler(l)
	// A quarter of the cycles serve under an already-expired request
	// deadline: every admitted query must shed 503 (never a wrong count,
	// never a degraded label) — the deterministic overload arm, since
	// micro-second counts can't organically back the queue up to its
	// millisecond timeout.
	reqTimeout := time.Duration(5+rng.IntN(45)) * time.Millisecond
	if rng.IntN(4) == 0 {
		reqTimeout = time.Nanosecond
	}
	h.SetLimits(serve.Limits{
		RequestTimeout: reqTimeout,
		MaxInFlight:    1 + rng.IntN(3),
		MaxQueue:       1 + rng.IntN(2),
		QueueTimeout:   time.Duration(1+rng.IntN(4)) * time.Millisecond,
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	urls := make([]string, len(probes))
	wants := make([]int, len(probes))
	for i, p := range probes {
		urls[i] = ts.URL + "/v1/count?q=" + url.QueryEscape(p.expr)
		wants[i], _ = oracle.Count(p.pat)
	}

	clients := 4 + rng.IntN(4)
	seeds := make([]uint64, clients)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}
	errs := make(chan error, clients)
	results := make(chan Report, clients)
	for g := 0; g < clients; g++ {
		go func(seed uint64) {
			var local Report
			crng := rand.New(rand.NewPCG(seed, 0x5E44E))
			client := ts.Client()
			for i := 0; i < 24; i++ {
				pi := crng.IntN(len(urls))
				ctx := context.Background()
				if crng.IntN(3) == 0 {
					tctx, cancel := context.WithTimeout(ctx,
						time.Duration(crng.IntN(1500))*time.Microsecond)
					defer cancel()
					ctx = tctx
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, urls[pi], nil)
				if err != nil {
					errs <- err
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					local.ServeClientDrops++ // client-side cancellation
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var cr serve.CountResult
					if err := decodeJSON(resp, &cr); err != nil {
						errs <- err
						return
					}
					if cr.Count != wants[pi] {
						errs <- fmt.Errorf("probe %d: served %d, oracle %d", pi, cr.Count, wants[pi])
						return
					}
					local.ServeOK++
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					resp.Body.Close()
					local.ServeShed++
				default:
					resp.Body.Close()
					errs <- fmt.Errorf("probe %d: status %d (want 200/429/503)", pi, resp.StatusCode)
					return
				}
			}
			errs <- nil
			results <- local
		}(seeds[g])
	}
	var firstErr error
	for g := 0; g < clients; g++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	for g := 0; g < clients; g++ {
		local := <-results
		rep.ServeOK += local.ServeOK
		rep.ServeShed += local.ServeShed
		rep.ServeClientDrops += local.ServeClientDrops
	}
	// The label must not have been marked degraded by cancellations or
	// overload: a health probe still answers ok.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		return err
	}
	var hr serve.HealthResult
	if err := decodeJSON(resp, &hr); err != nil {
		return err
	}
	if hr.Status != "ok" {
		return fmt.Errorf("label degraded after overload soak: %+v", hr)
	}
	return nil
}

// mkDataset builds a NULL-free random dataset (exact lazily-derived
// marginals, so served answers admit an exact oracle).
func mkDataset(rng *rand.Rand, rows, attrs, domain int) *dataset.Dataset {
	names := make([]string, attrs)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	bld := dataset.NewBuilder("chaos", names...)
	for a := 0; a < attrs; a++ {
		for v := 0; v < domain; v++ {
			if _, err := bld.InternValue(a, fmt.Sprintf("v%d", v)); err != nil {
				panic(err)
			}
		}
	}
	ids := make([]uint16, attrs)
	for r := 0; r < rows; r++ {
		for a := range ids {
			ids[a] = uint16(1 + rng.IntN(domain))
		}
		bld.AppendIDs(ids...)
	}
	d, err := bld.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// probe is one sampled pattern with its /v1/count query expression.
type probe struct {
	pat  core.Pattern
	expr string
}

// mkProbes samples patterns from rows of d over the label set.
func mkProbes(rng *rand.Rand, d *dataset.Dataset, s lattice.AttrSet, n int) []probe {
	probes := make([]probe, n)
	for i := range probes {
		r := rng.IntN(d.NumRows())
		var parts []string
		for _, a := range s.Members() {
			parts = append(parts, fmt.Sprintf("%s=%s", d.Attr(a).Name(), d.Value(r, a)))
		}
		probes[i] = probe{pat: core.PatternFromRow(d, r, s), expr: strings.Join(parts, ",")}
	}
	return probes
}

// assertEmptyDir fails when dir still holds entries (leaked spill files).
func assertEmptyDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		return fmt.Errorf("%d spill entries leaked in %s: %v", len(entries), dir, names)
	}
	return nil
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
