// Package dataset implements the relational substrate the PCBL label model
// is defined over: an in-memory, column-oriented table of categorical
// attributes with dictionary-encoded values, optional NULLs, CSV input and
// output, and bucketization of numeric attributes into categorical ranges
// (paper §II: "Where attribute values are drawn from a continuous domain, we
// render them categorical by bucketizing them into ranges").
//
// Values of an attribute are dictionary-encoded as dense uint16 identifiers.
// Identifier 0 is reserved for NULL (a missing value); the active domain
// Dom(A) of an attribute consists of identifiers 1..DomainSize(A). NULLs
// never satisfy an equality pattern and are excluded from value counts,
// which matches the semantics required by the paper's NP-hardness reduction
// (Appendix A) where reduction tuples deliberately leave attributes unset.
package dataset

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Null is the reserved value identifier for a missing value.
const Null uint16 = 0

// MaxDomainSize is the largest number of distinct non-null values a single
// attribute may carry. Identifiers are uint16 with 0 reserved for NULL.
const MaxDomainSize = 1<<16 - 2

// Attribute describes a single categorical column: its name and the
// dictionary mapping between external string values and dense identifiers.
type Attribute struct {
	name string
	dom  []string          // dom[i] is the string for identifier i+1
	ids  map[string]uint16 // inverse mapping; never contains NULL
}

// NewAttribute returns an attribute with the given name and an empty domain.
func NewAttribute(name string) *Attribute {
	return &Attribute{name: name, ids: make(map[string]uint16)}
}

// Name returns the attribute name.
func (a *Attribute) Name() string { return a.name }

// DomainSize returns the number of distinct non-null values observed.
func (a *Attribute) DomainSize() int { return len(a.dom) }

// Domain returns the attribute's active domain as strings, in insertion
// order (identifier order). The returned slice is a copy.
func (a *Attribute) Domain() []string {
	out := make([]string, len(a.dom))
	copy(out, a.dom)
	return out
}

// Value returns the string for a value identifier. It returns "" for Null.
func (a *Attribute) Value(id uint16) string {
	if id == Null {
		return ""
	}
	return a.dom[id-1]
}

// ID returns the identifier for a string value, or (Null, false) when the
// value is not part of the active domain.
func (a *Attribute) ID(value string) (uint16, bool) {
	id, ok := a.ids[value]
	return id, ok
}

// intern returns the identifier for value, extending the dictionary if the
// value has not been seen before.
func (a *Attribute) intern(value string) (uint16, error) {
	if id, ok := a.ids[value]; ok {
		return id, nil
	}
	if len(a.dom) >= MaxDomainSize {
		return Null, fmt.Errorf("dataset: attribute %q exceeds %d distinct values", a.name, MaxDomainSize)
	}
	a.dom = append(a.dom, value)
	id := uint16(len(a.dom))
	a.ids[value] = id
	return id, nil
}

// clone returns a deep copy of the attribute.
func (a *Attribute) clone() *Attribute {
	c := &Attribute{name: a.name, dom: append([]string(nil), a.dom...), ids: make(map[string]uint16, len(a.ids))}
	for v, id := range a.ids {
		c.ids[v] = id
	}
	return c
}

// Dataset is an immutable-after-build, column-oriented categorical relation.
// Use a Builder to construct one, or ReadCSV to load one from CSV text.
type Dataset struct {
	name  string
	attrs []*Attribute
	cols  [][]uint16 // cols[a][row] is the value identifier
	rows  int
}

// Name returns the dataset's display name (may be empty).
func (d *Dataset) Name() string { return d.name }

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.rows }

// NumAttrs returns the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.attrs) }

// Attr returns the i-th attribute descriptor.
func (d *Dataset) Attr(i int) *Attribute { return d.attrs[i] }

// AttrNames returns the attribute names in column order.
func (d *Dataset) AttrNames() []string {
	out := make([]string, len(d.attrs))
	for i, a := range d.attrs {
		out[i] = a.name
	}
	return out
}

// AttrIndex returns the index of the attribute with the given name, or
// (-1, false) when absent.
func (d *Dataset) AttrIndex(name string) (int, bool) {
	for i, a := range d.attrs {
		if a.name == name {
			return i, true
		}
	}
	return -1, false
}

// Col returns the raw identifier column for attribute i. The returned slice
// must not be modified; it aliases the dataset's storage.
func (d *Dataset) Col(i int) []uint16 { return d.cols[i] }

// ID returns the value identifier at (row, attr).
func (d *Dataset) ID(row, attr int) uint16 { return d.cols[attr][row] }

// Value returns the string value at (row, attr); "" for NULL.
func (d *Dataset) Value(row, attr int) string {
	return d.attrs[attr].Value(d.cols[attr][row])
}

// Row returns the identifiers of a full tuple as a new slice.
func (d *Dataset) Row(row int) []uint16 {
	out := make([]uint16, len(d.attrs))
	for a := range d.attrs {
		out[a] = d.cols[a][row]
	}
	return out
}

// ValueCounts returns, for attribute a, the tuple count of each domain value;
// index i holds the count of identifier i+1. This is the VC entry c_D({A=v}).
func (d *Dataset) ValueCounts(a int) []int {
	counts := make([]int, d.attrs[a].DomainSize())
	for _, id := range d.cols[a] {
		if id != Null {
			counts[id-1]++
		}
	}
	return counts
}

// NonNullCount returns the number of tuples with a non-null value in
// attribute a, i.e. the denominator Σ_{v∈Dom(A)} c_D({A=v}) of the paper's
// estimation formula.
func (d *Dataset) NonNullCount(a int) int {
	n := 0
	for _, id := range d.cols[a] {
		if id != Null {
			n++
		}
	}
	return n
}

// Fractions returns, for attribute a, the independence factor of each domain
// value: c_D({A=v}) / Σ_{u∈Dom(A)} c_D({A=u}). Index i corresponds to value
// identifier i+1. When the attribute is entirely NULL all fractions are 0.
func (d *Dataset) Fractions(a int) []float64 {
	counts := d.ValueCounts(a)
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// VCSize returns |VC|: the total number of (attribute, value) pairs stored in
// the value-count section of any label of this dataset.
func (d *Dataset) VCSize() int {
	n := 0
	for _, a := range d.attrs {
		n += a.DomainSize()
	}
	return n
}

// Project returns a new dataset containing only the attributes at the given
// column indices, in the given order. Column storage is shared with the
// receiver (datasets are immutable after build, so sharing is safe).
func (d *Dataset) Project(attrIdx []int) (*Dataset, error) {
	p := &Dataset{name: d.name, rows: d.rows}
	seen := make(map[int]bool, len(attrIdx))
	for _, i := range attrIdx {
		if i < 0 || i >= len(d.attrs) {
			return nil, fmt.Errorf("dataset: project index %d out of range [0,%d)", i, len(d.attrs))
		}
		if seen[i] {
			return nil, fmt.Errorf("dataset: project index %d repeated", i)
		}
		seen[i] = true
		p.attrs = append(p.attrs, d.attrs[i])
		p.cols = append(p.cols, d.cols[i])
	}
	return p, nil
}

// ProjectNames is Project with attribute names instead of indices.
func (d *Dataset) ProjectNames(names ...string) (*Dataset, error) {
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := d.AttrIndex(n)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		idx = append(idx, i)
	}
	return d.Project(idx)
}

// Prefix returns a projection onto the first k attributes. It is used by the
// scalability experiment that varies the number of attributes (paper Fig 8).
func (d *Dataset) Prefix(k int) (*Dataset, error) {
	if k < 0 || k > len(d.attrs) {
		return nil, fmt.Errorf("dataset: prefix %d out of range [0,%d]", k, len(d.attrs))
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return d.Project(idx)
}

// Head returns a dataset holding the first n rows (or all rows when n exceeds
// NumRows). Column storage is shared via re-slicing.
func (d *Dataset) Head(n int) *Dataset {
	if n > d.rows {
		n = d.rows
	}
	if n < 0 {
		n = 0
	}
	h := &Dataset{name: d.name, attrs: d.attrs, rows: n}
	h.cols = make([][]uint16, len(d.cols))
	for i, c := range d.cols {
		h.cols[i] = c[:n]
	}
	return h
}

// Slice returns a dataset holding rows [lo, hi) with column storage shared
// via re-slicing — no copy, no re-encode. It is the suffix-addressing
// primitive of incremental maintenance: the appended tail of a grown
// dataset becomes a delta dataset in O(attrs). The slice shares the
// receiver's attribute dictionaries, so its domains equal the full
// dataset's — exactly the extension invariant core.Label.Merge requires.
func (d *Dataset) Slice(lo, hi int) (*Dataset, error) {
	if lo < 0 || hi < lo || hi > d.rows {
		return nil, fmt.Errorf("dataset: slice [%d, %d) out of range [0, %d]", lo, hi, d.rows)
	}
	s := &Dataset{name: d.name, attrs: d.attrs, rows: hi - lo}
	s.cols = make([][]uint16, len(d.cols))
	for i, c := range d.cols {
		s.cols[i] = c[lo:hi:hi]
	}
	return s, nil
}

// String summarizes the dataset shape and domains.
func (d *Dataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataset %q: %d rows, %d attributes [", d.name, d.rows, len(d.attrs))
	for i, a := range d.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s(%d)", a.name, a.DomainSize())
	}
	b.WriteString("]")
	return b.String()
}

// Builder accumulates rows and produces an immutable Dataset.
type Builder struct {
	name  string
	attrs []*Attribute
	cols  [][]uint16
	rows  int
	err   error
}

// NewBuilder returns a builder for a dataset with the given name and
// attribute names.
func NewBuilder(name string, attrNames ...string) *Builder {
	b := &Builder{name: name}
	seen := make(map[string]bool, len(attrNames))
	for _, n := range attrNames {
		if seen[n] {
			b.err = fmt.Errorf("dataset: duplicate attribute name %q", n)
			continue
		}
		seen[n] = true
		b.attrs = append(b.attrs, NewAttribute(n))
		b.cols = append(b.cols, nil)
	}
	return b
}

// NewBuilderFrom returns a builder whose attributes start as deep copies of
// d's dictionaries: values d already knows keep their identifiers, and new
// values extend the domains past them. Incremental ingestion seeds delta
// datasets this way so the delta's encoding extends the base's — the
// dictionary-alignment invariant core.Label.Merge validates. d's row data
// is not copied; the builder starts empty.
func NewBuilderFrom(d *Dataset, name string) *Builder {
	b := &Builder{name: name}
	for _, a := range d.attrs {
		b.attrs = append(b.attrs, a.clone())
		b.cols = append(b.cols, nil)
	}
	return b
}

// NumAttrs returns the number of attributes configured on the builder.
func (b *Builder) NumAttrs() int { return len(b.attrs) }

// NumRows returns the number of rows appended so far.
func (b *Builder) NumRows() int { return b.rows }

// AppendStrings appends one tuple given as string values. Empty strings are
// stored as NULL. The number of values must equal the attribute count.
func (b *Builder) AppendStrings(values ...string) *Builder {
	if b.err != nil {
		return b
	}
	if len(values) != len(b.attrs) {
		b.err = fmt.Errorf("dataset: row has %d values, want %d", len(values), len(b.attrs))
		return b
	}
	for i, v := range values {
		var id uint16
		if v != "" {
			var err error
			id, err = b.attrs[i].intern(v)
			if err != nil {
				b.err = err
				return b
			}
		}
		b.cols[i] = append(b.cols[i], id)
	}
	b.rows++
	return b
}

// AppendIDs appends one tuple given as pre-encoded value identifiers. Each
// identifier must be Null or within the attribute's current domain.
func (b *Builder) AppendIDs(ids ...uint16) *Builder {
	if b.err != nil {
		return b
	}
	if len(ids) != len(b.attrs) {
		b.err = fmt.Errorf("dataset: row has %d ids, want %d", len(ids), len(b.attrs))
		return b
	}
	for i, id := range ids {
		if id != Null && int(id) > b.attrs[i].DomainSize() {
			b.err = fmt.Errorf("dataset: id %d out of domain for attribute %q", id, b.attrs[i].name)
			return b
		}
		b.cols[i] = append(b.cols[i], id)
	}
	b.rows++
	return b
}

// AppendRows bulk-appends every row of src by identifier — no string
// re-encode. src's attributes must match the builder's in name and order,
// and each src domain must be a prefix of the builder's (identifiers then
// mean the same values); seed the builder with NewBuilderFrom, or share
// dictionaries outright via Dataset.Slice, to guarantee it.
func (b *Builder) AppendRows(src *Dataset) *Builder {
	if b.err != nil {
		return b
	}
	if len(src.attrs) != len(b.attrs) {
		b.err = fmt.Errorf("dataset: AppendRows source has %d attributes, want %d", len(src.attrs), len(b.attrs))
		return b
	}
	for i, a := range b.attrs {
		sa := src.attrs[i]
		if sa.name != a.name {
			b.err = fmt.Errorf("dataset: AppendRows attribute %d named %q, want %q", i, sa.name, a.name)
			return b
		}
		if len(sa.dom) > len(a.dom) {
			b.err = fmt.Errorf("dataset: AppendRows source domain of %q has %d values, builder has %d", a.name, len(sa.dom), len(a.dom))
			return b
		}
		for j, v := range sa.dom {
			if a.dom[j] != v {
				b.err = fmt.Errorf("dataset: AppendRows domain of %q diverges at value %d (%q vs %q)", a.name, j, v, a.dom[j])
				return b
			}
		}
	}
	for i := range b.cols {
		b.cols[i] = append(b.cols[i], src.cols[i]...)
	}
	b.rows += src.rows
	return b
}

// InternValue forces the given value into attribute a's domain and returns
// its identifier. Generators use this to fix domains before appending rows.
func (b *Builder) InternValue(a int, value string) (uint16, error) {
	if b.err != nil {
		return Null, b.err
	}
	return b.attrs[a].intern(value)
}

// Err returns the first error encountered while building, if any.
func (b *Builder) Err() error { return b.err }

// Build finalizes the builder into a Dataset. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.attrs) == 0 {
		return nil, errors.New("dataset: cannot build a dataset with zero attributes")
	}
	d := &Dataset{name: b.name, attrs: b.attrs, cols: b.cols, rows: b.rows}
	b.attrs, b.cols = nil, nil
	return d, nil
}

// Concat returns a new dataset whose rows are d's rows followed by more's
// rows. The two datasets must have identical attribute names in identical
// order; domains are merged (identifiers are re-encoded as needed).
func Concat(d, more *Dataset) (*Dataset, error) {
	if d.NumAttrs() != more.NumAttrs() {
		return nil, fmt.Errorf("dataset: concat attribute count mismatch %d vs %d", d.NumAttrs(), more.NumAttrs())
	}
	for i := range d.attrs {
		if d.attrs[i].name != more.attrs[i].name {
			return nil, fmt.Errorf("dataset: concat attribute %d name mismatch %q vs %q", i, d.attrs[i].name, more.attrs[i].name)
		}
	}
	b := NewBuilder(d.name, d.AttrNames()...)
	for r := 0; r < d.rows; r++ {
		vals := make([]string, d.NumAttrs())
		for a := range d.attrs {
			vals[a] = d.Value(r, a)
		}
		b.AppendStrings(vals...)
	}
	for r := 0; r < more.rows; r++ {
		vals := make([]string, more.NumAttrs())
		for a := range more.attrs {
			vals[a] = more.Value(r, a)
		}
		b.AppendStrings(vals...)
	}
	return b.Build()
}

// SortedDomain returns the attribute's domain values sorted lexically. It is
// a convenience for deterministic rendering.
func SortedDomain(a *Attribute) []string {
	dom := a.Domain()
	sort.Strings(dom)
	return dom
}
