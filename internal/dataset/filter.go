package dataset

import "fmt"

// FilterOptions controls attribute pruning, mirroring the paper's COMPAS
// preparation (§IV-A): "We removed id attributes …, names …, dates and
// attributes with less than 2 values or over 100 values."
type FilterOptions struct {
	// MinDomain drops attributes with fewer distinct values (default 2
	// when zero: constants carry no count information).
	MinDomain int
	// MaxDomain drops attributes with more distinct values (default 100
	// when zero: id-like attributes make every pattern unique).
	MaxDomain int
	// DropNames lists attributes to drop unconditionally.
	DropNames []string
}

// FilterAttrs returns a projection of d without the attributes rejected by
// opts. At least one attribute must survive.
func FilterAttrs(d *Dataset, opts FilterOptions) (*Dataset, error) {
	minDom := opts.MinDomain
	if minDom == 0 {
		minDom = 2
	}
	maxDom := opts.MaxDomain
	if maxDom == 0 {
		maxDom = 100
	}
	drop := make(map[string]bool, len(opts.DropNames))
	for _, n := range opts.DropNames {
		drop[n] = true
	}
	var keep []int
	for i := 0; i < d.NumAttrs(); i++ {
		a := d.Attr(i)
		if drop[a.Name()] {
			continue
		}
		if ds := a.DomainSize(); ds < minDom || ds > maxDom {
			continue
		}
		keep = append(keep, i)
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("dataset: filter would drop all %d attributes", d.NumAttrs())
	}
	return d.Project(keep)
}
