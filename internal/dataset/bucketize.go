package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// BinStrategy selects how numeric values are partitioned into buckets.
type BinStrategy int

const (
	// EqualWidth splits [min, max] into k intervals of equal width.
	EqualWidth BinStrategy = iota
	// EqualFrequency chooses boundaries at quantiles so each bucket holds
	// (approximately) the same number of non-null tuples.
	EqualFrequency
)

// String implements fmt.Stringer.
func (s BinStrategy) String() string {
	switch s {
	case EqualWidth:
		return "equal-width"
	case EqualFrequency:
		return "equal-frequency"
	default:
		return fmt.Sprintf("BinStrategy(%d)", int(s))
	}
}

// BucketizeOptions configures Bucketize.
type BucketizeOptions struct {
	// Bins is the number of buckets; it must be at least 2.
	Bins int
	// Strategy selects the boundary placement; EqualWidth when zero.
	Strategy BinStrategy
}

// IsNumericAttr reports whether every non-null value of attribute a parses as
// a float. Attributes with no non-null values are not numeric.
func IsNumericAttr(d *Dataset, a int) bool {
	attr := d.Attr(a)
	if attr.DomainSize() == 0 {
		return false
	}
	for _, v := range attr.Domain() {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return false
		}
	}
	return true
}

// Bucketize returns a copy of the dataset in which the named attributes are
// re-encoded from numeric values into range buckets such as "[20,40)". The
// paper's Credit Card preparation bucketizes each numeric attribute into 5
// bins (§IV-A). Attributes whose domain is already at most opts.Bins values
// are left untouched. Non-numeric attributes among attrNames are an error.
func Bucketize(d *Dataset, attrNames []string, opts BucketizeOptions) (*Dataset, error) {
	if opts.Bins < 2 {
		return nil, fmt.Errorf("dataset: bucketize needs at least 2 bins, got %d", opts.Bins)
	}
	target := make(map[int]bool, len(attrNames))
	for _, n := range attrNames {
		i, ok := d.AttrIndex(n)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		if d.Attr(i).DomainSize() <= opts.Bins {
			continue // already categorical enough
		}
		if !IsNumericAttr(d, i) {
			return nil, fmt.Errorf("dataset: attribute %q is not numeric", n)
		}
		target[i] = true
	}
	b := NewBuilder(d.Name(), d.AttrNames()...)
	// Pre-compute per-attribute bucket label for every domain value.
	relabel := make(map[int][]string, len(target)) // attr -> id-1 -> label
	for a := range target {
		labels, err := bucketLabels(d, a, opts)
		if err != nil {
			return nil, err
		}
		relabel[a] = labels
	}
	row := make([]string, d.NumAttrs())
	for r := 0; r < d.NumRows(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			id := d.ID(r, a)
			if id == Null {
				row[a] = ""
				continue
			}
			if labels, ok := relabel[a]; ok {
				row[a] = labels[id-1]
			} else {
				row[a] = d.Value(r, a)
			}
		}
		b.AppendStrings(row...)
	}
	return b.Build()
}

// BucketizeAllNumeric bucketizes every numeric attribute of the dataset.
func BucketizeAllNumeric(d *Dataset, opts BucketizeOptions) (*Dataset, error) {
	var names []string
	for i := 0; i < d.NumAttrs(); i++ {
		if d.Attr(i).DomainSize() > opts.Bins && IsNumericAttr(d, i) {
			names = append(names, d.Attr(i).Name())
		}
	}
	return Bucketize(d, names, opts)
}

// bucketLabels maps each current domain value of attribute a to its bucket
// label under the given options.
func bucketLabels(d *Dataset, a int, opts BucketizeOptions) ([]string, error) {
	attr := d.Attr(a)
	dom := attr.Domain()
	vals := make([]float64, len(dom))
	for i, s := range dom {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: attribute %q value %q is not numeric: %w", attr.Name(), s, err)
		}
		vals[i] = v
	}
	var bounds []float64
	switch opts.Strategy {
	case EqualWidth:
		bounds = equalWidthBounds(vals, opts.Bins)
	case EqualFrequency:
		bounds = equalFrequencyBounds(d, a, vals, opts.Bins)
	default:
		return nil, fmt.Errorf("dataset: unknown bin strategy %v", opts.Strategy)
	}
	labels := make([]string, len(vals))
	for i, v := range vals {
		labels[i] = bucketLabel(bounds, v)
	}
	return labels, nil
}

// equalWidthBounds returns k+1 boundaries splitting [min,max] evenly.
func equalWidthBounds(vals []float64, k int) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	bounds := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = lo + (hi-lo)*float64(i)/float64(k)
	}
	bounds[k] = hi
	return bounds
}

// equalFrequencyBounds returns boundaries at empirical quantiles, weighting
// each domain value by its tuple count. Duplicate boundaries are collapsed,
// so fewer than k buckets may result for heavily skewed attributes.
func equalFrequencyBounds(d *Dataset, a int, vals []float64, k int) []float64 {
	counts := d.ValueCounts(a)
	type vc struct {
		v float64
		c int
	}
	pairs := make([]vc, len(vals))
	total := 0
	for i := range vals {
		pairs[i] = vc{vals[i], counts[i]}
		total += counts[i]
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	bounds := []float64{pairs[0].v}
	cum, next := 0, total/k
	for _, p := range pairs {
		cum += p.c
		if cum >= next && len(bounds) < k {
			bounds = append(bounds, p.v)
			next = total * (len(bounds)) / k
		}
	}
	last := pairs[len(pairs)-1].v
	if bounds[len(bounds)-1] != last {
		bounds = append(bounds, last)
	}
	// Collapse duplicates.
	out := bounds[:1]
	for _, b := range bounds[1:] {
		if b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// bucketLabel formats the half-open interval containing v. The last bucket
// is closed on both ends.
func bucketLabel(bounds []float64, v float64) string {
	for i := 0; i < len(bounds)-1; i++ {
		last := i == len(bounds)-2
		if v < bounds[i+1] || (last && v <= bounds[i+1]) {
			open, close := "[", ")"
			if last {
				close = "]"
			}
			return fmt.Sprintf("%s%s,%s%s", open, trimFloat(bounds[i]), trimFloat(bounds[i+1]), close)
		}
	}
	return fmt.Sprintf("[%s,%s]", trimFloat(bounds[len(bounds)-2]), trimFloat(bounds[len(bounds)-1]))
}

// trimFloat renders a float compactly (integers without a decimal point).
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
