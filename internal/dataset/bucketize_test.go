package dataset

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func numericDataset(t *testing.T, n int, seed uint64) *Dataset {
	t.Helper()
	b := NewBuilder("nums", "v", "tag")
	rng := rand.New(rand.NewPCG(seed, 1))
	for i := 0; i < n; i++ {
		b.AppendStrings(fmt.Sprintf("%.2f", rng.Float64()*100), "t")
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIsNumericAttr(t *testing.T) {
	d := numericDataset(t, 20, 1)
	if !IsNumericAttr(d, 0) {
		t.Error("numeric attribute not detected")
	}
	if IsNumericAttr(d, 1) {
		t.Error("string attribute detected as numeric")
	}
}

func TestBucketizeEqualWidth(t *testing.T) {
	d := numericDataset(t, 500, 2)
	out, err := Bucketize(d, []string{"v"}, BucketizeOptions{Bins: 5, Strategy: EqualWidth})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Attr(0).DomainSize(); got > 5 || got < 2 {
		t.Errorf("bucketized domain = %d, want 2..5", got)
	}
	if out.NumRows() != d.NumRows() {
		t.Error("row count changed")
	}
	// Untouched attribute keeps its values.
	if out.Value(0, 1) != "t" {
		t.Error("tag attribute modified")
	}
}

func TestBucketizeEqualFrequency(t *testing.T) {
	d := numericDataset(t, 1000, 3)
	out, err := Bucketize(d, []string{"v"}, BucketizeOptions{Bins: 5, Strategy: EqualFrequency})
	if err != nil {
		t.Fatal(err)
	}
	counts := out.ValueCounts(0)
	if len(counts) < 2 {
		t.Fatalf("only %d buckets", len(counts))
	}
	// Each bucket within a loose factor of the ideal share.
	ideal := 1000 / len(counts)
	for i, c := range counts {
		if c < ideal/3 || c > ideal*3 {
			t.Errorf("bucket %d holds %d, ideal %d", i, c, ideal)
		}
	}
}

func TestBucketizeSkipsSmallDomains(t *testing.T) {
	b := NewBuilder("small", "x")
	for _, v := range []string{"1", "2", "3", "1", "2"} {
		b.AppendStrings(v)
	}
	d, _ := b.Build()
	out, err := Bucketize(d, []string{"x"}, BucketizeOptions{Bins: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attr(0).DomainSize() != 3 {
		t.Error("small domain was rebucketized")
	}
}

func TestBucketizeErrors(t *testing.T) {
	d := numericDataset(t, 10, 4)
	if _, err := Bucketize(d, []string{"v"}, BucketizeOptions{Bins: 1}); err == nil {
		t.Error("1 bin accepted")
	}
	if _, err := Bucketize(d, []string{"nope"}, BucketizeOptions{Bins: 5}); err == nil {
		t.Error("unknown attribute accepted")
	}
	b := NewBuilder("mixed", "x")
	for i := 0; i < 10; i++ {
		b.AppendStrings(fmt.Sprintf("v%d", i))
	}
	md, _ := b.Build()
	if _, err := Bucketize(md, []string{"x"}, BucketizeOptions{Bins: 5}); err == nil {
		t.Error("non-numeric attribute accepted")
	}
}

func TestBucketizeAllNumeric(t *testing.T) {
	b := NewBuilder("m", "num", "cat")
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 200; i++ {
		b.AppendStrings(fmt.Sprintf("%d", rng.IntN(10000)), string(rune('a'+i%4)))
	}
	d, _ := b.Build()
	out, err := BucketizeAllNumeric(d, BucketizeOptions{Bins: 5, Strategy: EqualFrequency})
	if err != nil {
		t.Fatal(err)
	}
	if out.Attr(0).DomainSize() > 5 {
		t.Error("numeric attribute not bucketized")
	}
	if out.Attr(1).DomainSize() != 4 {
		t.Error("categorical attribute modified")
	}
}

// TestBucketizePreservesRowMembership (property): every numeric value lands
// in a bucket whose printed bounds contain it.
func TestBucketizePreservesRowMembership(t *testing.T) {
	prop := func(seed uint64) bool {
		d := numericDatasetQuick(seed%1000+50, seed)
		out, err := Bucketize(d, []string{"v"}, BucketizeOptions{Bins: 4, Strategy: EqualWidth})
		if err != nil {
			return false
		}
		return out.NumRows() == d.NumRows() && out.Attr(0).DomainSize() <= 4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func numericDatasetQuick(n, seed uint64) *Dataset {
	b := NewBuilder("nums", "v")
	rng := rand.New(rand.NewPCG(seed, 9))
	for i := uint64(0); i < n; i++ {
		b.AppendStrings(fmt.Sprintf("%.3f", rng.Float64()*1000-500))
	}
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

func TestNullsSurviveBucketize(t *testing.T) {
	b := NewBuilder("n", "v")
	b.AppendStrings("1.5")
	b.AppendStrings("")
	b.AppendStrings("2.5")
	b.AppendStrings("100")
	b.AppendStrings("50")
	b.AppendStrings("75")
	b.AppendStrings("25")
	d, _ := b.Build()
	out, err := Bucketize(d, []string{"v"}, BucketizeOptions{Bins: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.ID(1, 0) != Null {
		t.Error("NULL lost in bucketization")
	}
	if out.NonNullCount(0) != 6 {
		t.Errorf("non-null = %d, want 6", out.NonNullCount(0))
	}
}

func TestBinStrategyString(t *testing.T) {
	if EqualWidth.String() != "equal-width" || EqualFrequency.String() != "equal-frequency" {
		t.Error("strategy names wrong")
	}
	if BinStrategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
}
