package dataset

// Tests for the incremental-maintenance surface of the dataset package:
// Slice (suffix addressing without copy), AppendRows (prefix-domain
// validation), and ReadCSVAppend (delta parsing that extends a base
// dataset's dictionaries and skips already-labeled rows).

import (
	"strings"
	"testing"
)

func TestSlice(t *testing.T) {
	d := sample(t)
	s, err := d.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 3 || s.NumAttrs() != 2 {
		t.Fatalf("shape = (%d, %d)", s.NumRows(), s.NumAttrs())
	}
	// Row 0 of the slice is row 1 of the source; dictionaries are shared.
	if got := s.Value(0, 0); got != "blue" {
		t.Errorf("slice row 0 = %q", got)
	}
	if s.Attr(0) != d.Attr(0) {
		t.Error("slice does not share attribute dictionaries")
	}
	if id, _ := s.Attr(0).ID("green"); s.ID(2, 0) != id {
		t.Error("slice ids do not line up with source dictionary")
	}
	// Degenerate but legal: empty slices at both ends.
	for _, bounds := range [][2]int{{0, 0}, {5, 5}} {
		e, err := d.Slice(bounds[0], bounds[1])
		if err != nil {
			t.Fatal(err)
		}
		if e.NumRows() != 0 {
			t.Errorf("slice %v rows = %d", bounds, e.NumRows())
		}
	}
	for _, bounds := range [][2]int{{-1, 2}, {3, 2}, {0, 6}} {
		if _, err := d.Slice(bounds[0], bounds[1]); err == nil {
			t.Errorf("slice %v accepted", bounds)
		}
	}
}

func TestAppendRows(t *testing.T) {
	d := sample(t)
	base, err := d.Slice(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilderFrom(base, "rebuilt")
	b.AppendRows(base)
	tail, _ := d.Slice(3, 5)
	b.AppendRows(tail)
	got := build(t, b)
	if got.NumRows() != d.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), d.NumRows())
	}
	for r := 0; r < d.NumRows(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			if got.ID(r, a) != d.ID(r, a) {
				t.Fatalf("id[%d][%d] = %d, want %d", r, a, got.ID(r, a), d.ID(r, a))
			}
		}
	}

	// Source with a larger domain than the builder must be rejected: ids
	// beyond the builder's dictionary would dangle.
	small := build(t, NewBuilder("small", "color", "size").AppendStrings("red", "S"))
	nb := NewBuilderFrom(small, "narrow")
	nb.AppendRows(d)
	if _, err := nb.Build(); err == nil {
		t.Error("wider source domain accepted")
	}
	// Diverging dictionary contents are rejected even at equal size.
	other := build(t, NewBuilder("other", "color", "size").AppendStrings("cyan", "S"))
	ob := NewBuilderFrom(other, "diverge")
	ob.AppendRows(small)
	if _, err := ob.Build(); err == nil {
		t.Error("diverging domain accepted")
	}
	// Attribute name mismatch.
	named := build(t, NewBuilder("named", "hue", "size").AppendStrings("red", "S"))
	mb := NewBuilderFrom(small, "names")
	mb.AppendRows(named)
	if _, err := mb.Build(); err == nil {
		t.Error("renamed attribute accepted")
	}
}

func TestReadCSVAppend(t *testing.T) {
	base, err := ReadCSV(strings.NewReader("color,size\nred,S\nblue,M\n"), CSVOptions{Name: "base"})
	if err != nil {
		t.Fatal(err)
	}
	// The grown file: the two labeled rows plus three appended ones, one of
	// which introduces a new color. SkipRows addresses the suffix.
	grown := "color,size\nred,S\nblue,M\nred,L\ngreen,M\nblue,\n"
	delta, err := ReadCSVAppend(strings.NewReader(grown), base, CSVOptions{Name: "delta", SkipRows: base.NumRows()})
	if err != nil {
		t.Fatal(err)
	}
	if delta.NumRows() != 3 {
		t.Fatalf("delta rows = %d, want 3", delta.NumRows())
	}
	// Known values keep their base identifiers; new values extend.
	baseRed, _ := base.Attr(0).ID("red")
	deltaRed, ok := delta.Attr(0).ID("red")
	if !ok || deltaRed != baseRed {
		t.Errorf("red id changed: base %d, delta %d", baseRed, deltaRed)
	}
	if delta.Attr(0).DomainSize() != base.Attr(0).DomainSize()+1 {
		t.Errorf("color domain = %d, want %d", delta.Attr(0).DomainSize(), base.Attr(0).DomainSize()+1)
	}
	for i, v := range base.Attr(0).Domain() {
		if delta.Attr(0).Domain()[i] != v {
			t.Fatalf("delta domain is not an extension of base at %d: %q vs %q", i, delta.Attr(0).Domain()[i], v)
		}
	}
	// The skipped prefix must not have interned anything: "L" appears only
	// in the suffix, so its presence is fine, but the base dictionaries
	// must be untouched.
	if base.Attr(1).DomainSize() != 2 {
		t.Errorf("base size domain grew to %d", base.Attr(1).DomainSize())
	}
	if got := delta.Value(2, 1); got != "" {
		t.Errorf("NULL in suffix = %q", got)
	}

	// Skipping past EOF yields an empty delta, not an error — the caller
	// (pcbl update) treats it as "nothing to do".
	empty, err := ReadCSVAppend(strings.NewReader(grown), base, CSVOptions{SkipRows: 99})
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 {
		t.Fatalf("rows past EOF = %d", empty.NumRows())
	}

	// Header drift is rejected: renamed and reordered columns.
	if _, err := ReadCSVAppend(strings.NewReader("color,weight\nred,1\n"), base, CSVOptions{}); err == nil {
		t.Error("renamed column accepted")
	}
	if _, err := ReadCSVAppend(strings.NewReader("size,color\nS,red\n"), base, CSVOptions{}); err == nil {
		t.Error("reordered columns accepted")
	}
	if _, err := ReadCSVAppend(strings.NewReader("color\nred\n"), base, CSVOptions{}); err == nil {
		t.Error("dropped column accepted")
	}
}

func TestReadCSVSkipRows(t *testing.T) {
	// SkipRows on plain ReadCSV: skipped rows are parsed but not interned.
	d, err := ReadCSV(strings.NewReader("x\na\nb\nc\n"), CSVOptions{SkipRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 1 || d.Attr(0).DomainSize() != 1 {
		t.Fatalf("rows = %d, domain = %d; want 1, 1", d.NumRows(), d.Attr(0).DomainSize())
	}
	if d.Value(0, 0) != "c" {
		t.Fatalf("kept row = %q", d.Value(0, 0))
	}
}
