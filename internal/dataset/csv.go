package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field delimiter; ',' when zero.
	Comma rune
	// NullTokens are the field values treated as NULL in addition to the
	// empty string. Comparison is case-sensitive.
	NullTokens []string
	// Name is the dataset display name.
	Name string
	// MaxRows, when positive, stops reading after that many data rows.
	MaxRows int
}

// ReadCSV reads a header-bearing CSV stream into a Dataset. The first record
// names the attributes; subsequent records are tuples. Empty fields and
// fields equal to one of opts.NullTokens are stored as NULL.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	names := make([]string, len(header))
	for i, h := range header {
		names[i] = strings.TrimSpace(h)
	}
	b := NewBuilder(opts.Name, names...)
	nulls := make(map[string]bool, len(opts.NullTokens))
	for _, t := range opts.NullTokens {
		nulls[t] = true
	}
	row := make([]string, len(names))
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", n+1, err)
		}
		for i, f := range rec {
			if nulls[f] {
				f = ""
			}
			row[i] = f
		}
		b.AppendStrings(row...)
		n++
		if opts.MaxRows > 0 && n >= opts.MaxRows {
			break
		}
	}
	return b.Build()
}

// ReadCSVFile reads a CSV file from disk via ReadCSV.
func ReadCSVFile(path string, opts CSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Name == "" {
		opts.Name = path
	}
	return ReadCSV(f, opts)
}

// WriteCSV writes the dataset, header included, to w. NULLs are written as
// empty fields.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.AttrNames()); err != nil {
		return err
	}
	row := make([]string, d.NumAttrs())
	for r := 0; r < d.NumRows(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			row[a] = d.Value(r, a)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to a file on disk via WriteCSV.
func WriteCSVFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
