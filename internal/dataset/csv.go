package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// CSVOptions controls CSV parsing.
type CSVOptions struct {
	// Comma is the field delimiter; ',' when zero.
	Comma rune
	// NullTokens are the field values treated as NULL in addition to the
	// empty string. Comparison is case-sensitive.
	NullTokens []string
	// Name is the dataset display name.
	Name string
	// MaxRows, when positive, stops reading after that many kept data rows.
	MaxRows int
	// SkipRows, when positive, discards that many data rows after the
	// header before any row is stored. Skipped rows are parsed only to be
	// passed over — their values are never interned, so dictionaries grow
	// only from rows actually kept. Incremental updates use it to address
	// the appended suffix of a grown CSV: `pcbl update -since N` skips the
	// N already-labeled rows.
	SkipRows int
}

// ReadCSV reads a header-bearing CSV stream into a Dataset. The first record
// names the attributes; subsequent records are tuples. Empty fields and
// fields equal to one of opts.NullTokens are stored as NULL.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	header, cr, err := readCSVHeader(r, opts)
	if err != nil {
		return nil, err
	}
	return readCSVRows(cr, NewBuilder(opts.Name, header...), opts)
}

// ReadCSVAppend reads the appended tail of a grown CSV into a delta
// dataset whose dictionaries extend base's: the header must name base's
// attributes in order, opts.SkipRows rows (typically the base's row count)
// are passed over without interning, and the remaining rows build on a copy
// of base's dictionaries — known values keep their identifiers, new values
// extend the domains. The result is exactly what core.Label.Merge expects
// as a delta's dataset. base may be schema-only (an artifact's reopened
// dataset): only its attribute dictionaries are consulted.
func ReadCSVAppend(r io.Reader, base *Dataset, opts CSVOptions) (*Dataset, error) {
	header, cr, err := readCSVHeader(r, opts)
	if err != nil {
		return nil, err
	}
	if len(header) != base.NumAttrs() {
		return nil, fmt.Errorf("dataset: CSV has %d columns, base dataset has %d attributes", len(header), base.NumAttrs())
	}
	for i, h := range header {
		if h != base.attrs[i].name {
			return nil, fmt.Errorf("dataset: CSV column %d named %q, base attribute is %q", i, h, base.attrs[i].name)
		}
	}
	return readCSVRows(cr, NewBuilderFrom(base, opts.Name), opts)
}

// readCSVHeader opens the CSV stream and returns the trimmed header names.
func readCSVHeader(r io.Reader, opts CSVOptions) ([]string, *csv.Reader, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	names := make([]string, len(header))
	for i, h := range header {
		names[i] = strings.TrimSpace(h)
	}
	return names, cr, nil
}

// readCSVRows streams data rows into the builder, honoring SkipRows and
// MaxRows.
func readCSVRows(cr *csv.Reader, b *Builder, opts CSVOptions) (*Dataset, error) {
	nulls := make(map[string]bool, len(opts.NullTokens))
	for _, t := range opts.NullTokens {
		nulls[t] = true
	}
	row := make([]string, b.NumAttrs())
	n, kept := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", n+1, err)
		}
		n++
		if n <= opts.SkipRows {
			continue
		}
		for i, f := range rec {
			if nulls[f] {
				f = ""
			}
			row[i] = f
		}
		b.AppendStrings(row...)
		kept++
		if opts.MaxRows > 0 && kept >= opts.MaxRows {
			break
		}
	}
	return b.Build()
}

// ReadCSVFile reads a CSV file from disk via ReadCSV.
func ReadCSVFile(path string, opts CSVOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Name == "" {
		opts.Name = path
	}
	return ReadCSV(f, opts)
}

// WriteCSV writes the dataset, header included, to w. NULLs are written as
// empty fields.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.AttrNames()); err != nil {
		return err
	}
	row := make([]string, d.NumAttrs())
	for r := 0; r < d.NumRows(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			row[a] = d.Value(r, a)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to a file on disk via WriteCSV.
func WriteCSVFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
