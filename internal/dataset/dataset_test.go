package dataset

import (
	"strings"
	"testing"
	"testing/quick"
)

func build(t *testing.T, b *Builder) *Dataset {
	t.Helper()
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sample(t *testing.T) *Dataset {
	b := NewBuilder("sample", "color", "size")
	b.AppendStrings("red", "S")
	b.AppendStrings("blue", "M")
	b.AppendStrings("red", "L")
	b.AppendStrings("green", "")
	b.AppendStrings("red", "M")
	return build(t, b)
}

func TestBuilderBasics(t *testing.T) {
	d := sample(t)
	if d.NumRows() != 5 || d.NumAttrs() != 2 {
		t.Fatalf("shape = (%d, %d)", d.NumRows(), d.NumAttrs())
	}
	if d.Name() != "sample" {
		t.Errorf("name = %q", d.Name())
	}
	if got := d.Attr(0).DomainSize(); got != 3 {
		t.Errorf("color domain = %d, want 3", got)
	}
	if got := d.Value(3, 1); got != "" {
		t.Errorf("null renders as %q", got)
	}
	if got := d.Value(0, 0); got != "red" {
		t.Errorf("value = %q", got)
	}
	if id, ok := d.Attr(0).ID("red"); !ok || d.Attr(0).Value(id) != "red" {
		t.Error("id round trip failed")
	}
	if _, ok := d.Attr(0).ID("magenta"); ok {
		t.Error("unknown value resolved")
	}
	row := d.Row(1)
	if d.Attr(0).Value(row[0]) != "blue" || d.Attr(1).Value(row[1]) != "M" {
		t.Errorf("row = %v", row)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("dup", "x", "x").Build(); err == nil {
		t.Error("duplicate attribute accepted")
	}
	b := NewBuilder("short", "x", "y")
	b.AppendStrings("only-one")
	if _, err := b.Build(); err == nil {
		t.Error("short row accepted")
	}
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("zero attributes accepted")
	}
	b2 := NewBuilder("ids", "x")
	if _, err := b2.InternValue(0, "a"); err != nil {
		t.Fatal(err)
	}
	b2.AppendIDs(9) // out of domain
	if _, err := b2.Build(); err == nil {
		t.Error("out-of-domain id accepted")
	}
}

func TestValueCountsAndFractions(t *testing.T) {
	d := sample(t)
	counts := d.ValueCounts(0)
	if counts[0] != 3 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("color counts = %v", counts)
	}
	// size has a NULL: denominator is 4.
	if got := d.NonNullCount(1); got != 4 {
		t.Errorf("non-null = %d, want 4", got)
	}
	fr := d.Fractions(1)
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum = %v", sum)
	}
	if got := d.VCSize(); got != 3+3 {
		t.Errorf("VCSize = %d, want 6", got)
	}
}

func TestProjectAndPrefix(t *testing.T) {
	d := sample(t)
	p, err := d.ProjectNames("size")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAttrs() != 1 || p.NumRows() != 5 {
		t.Fatalf("projection shape (%d, %d)", p.NumAttrs(), p.NumRows())
	}
	if p.Value(1, 0) != "M" {
		t.Errorf("projected value = %q", p.Value(1, 0))
	}
	if _, err := d.ProjectNames("nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := d.Project([]int{0, 0}); err == nil {
		t.Error("repeated index accepted")
	}
	pre, err := d.Prefix(1)
	if err != nil {
		t.Fatal(err)
	}
	if pre.NumAttrs() != 1 || pre.Attr(0).Name() != "color" {
		t.Error("prefix wrong")
	}
	if _, err := d.Prefix(3); err == nil {
		t.Error("oversized prefix accepted")
	}
}

func TestHead(t *testing.T) {
	d := sample(t)
	h := d.Head(2)
	if h.NumRows() != 2 {
		t.Errorf("head rows = %d", h.NumRows())
	}
	if d.Head(99).NumRows() != 5 {
		t.Error("head beyond size should clamp")
	}
	if d.Head(-1).NumRows() != 0 {
		t.Error("negative head should clamp to 0")
	}
}

func TestConcat(t *testing.T) {
	a := sample(t)
	b := sample(t)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 10 {
		t.Errorf("rows = %d", c.NumRows())
	}
	if c.Value(7, 0) != a.Value(2, 0) {
		t.Error("concatenated values differ")
	}
	other := build(t, NewBuilder("other", "x").AppendStrings("1"))
	if _, err := Concat(a, other); err == nil {
		t.Error("mismatched schemas accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != d.NumRows() || back.NumAttrs() != d.NumAttrs() {
		t.Fatalf("shape mismatch (%d,%d)", back.NumRows(), back.NumAttrs())
	}
	for r := 0; r < d.NumRows(); r++ {
		for a := 0; a < d.NumAttrs(); a++ {
			if back.Value(r, a) != d.Value(r, a) {
				t.Errorf("(%d,%d): %q != %q", r, a, back.Value(r, a), d.Value(r, a))
			}
		}
	}
}

func TestCSVNullTokens(t *testing.T) {
	in := "a,b\nx,NULL\nNA,y\n"
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{NullTokens: []string{"NULL", "NA"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.ID(0, 1) != Null || d.ID(1, 0) != Null {
		t.Error("null tokens not recognized")
	}
	if d.ID(0, 0) == Null || d.ID(1, 1) == Null {
		t.Error("real values nulled")
	}
}

func TestCSVMaxRows(t *testing.T) {
	in := "a\n1\n2\n3\n"
	d, err := ReadCSV(strings.NewReader(in), CSVOptions{MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", d.NumRows())
	}
}

// TestCSVRoundTripProperty (property): any table of small string values
// survives a write/read cycle.
func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(cells [][2]uint8) bool {
		b := NewBuilder("prop", "c0", "c1")
		for _, row := range cells {
			v0 := ""
			if row[0] > 50 {
				v0 = string(rune('a' + row[0]%26))
			}
			v1 := string(rune('A' + row[1]%26))
			b.AppendStrings(v0, v1)
		}
		d, err := b.Build()
		if err != nil {
			return false
		}
		var sb strings.Builder
		if err := WriteCSV(&sb, d); err != nil {
			return false
		}
		back, err := ReadCSV(strings.NewReader(sb.String()), CSVOptions{})
		if err != nil {
			return false
		}
		if back.NumRows() != d.NumRows() {
			return false
		}
		for r := 0; r < d.NumRows(); r++ {
			for a := 0; a < 2; a++ {
				if back.Value(r, a) != d.Value(r, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFilterAttrs(t *testing.T) {
	b := NewBuilder("f", "constant", "good", "id")
	for i := 0; i < 150; i++ {
		b.AppendStrings("same", string(rune('a'+i%3)), string(rune(i))+"u")
	}
	d := build(t, b)
	filtered, err := FilterAttrs(d, FilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.NumAttrs() != 1 || filtered.Attr(0).Name() != "good" {
		t.Errorf("filtered attrs = %v", filtered.AttrNames())
	}
	// DropNames removes unconditionally.
	if _, err := FilterAttrs(d, FilterOptions{DropNames: []string{"good"}}); err == nil {
		t.Error("dropping the only surviving attribute should error")
	}
}

func TestString(t *testing.T) {
	d := sample(t)
	s := d.String()
	if !strings.Contains(s, "color(3)") || !strings.Contains(s, "5 rows") {
		t.Errorf("String = %q", s)
	}
}
