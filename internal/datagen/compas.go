package datagen

import "pcbl/internal/dataset"

// COMPASRows is the row count of the paper's COMPAS dataset.
const COMPASRows = 60843

// COMPASSpec returns the generation spec for the COMPAS emulator: 17
// attributes after the paper's preparation (ids, names, dates and
// out-of-range-cardinality attributes removed; age bucketized into four
// ranges). Marginals for gender, age, race and marital status follow the
// published counts of Fig 1. The assessment-related attributes form a
// cluster of (near-)deterministic correlations — Scale_ID ↔ DisplayText,
// RecSupervisionLevel ↔ RecSupervisionLevelText, DecileScore → ScoreText —
// which is exactly the attribute set the paper's optimal label selects for
// bound 100 (§IV-E).
func COMPASSpec() Spec {
	decile := []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}
	recLevels := []string{"1", "2", "3", "4"}
	return Spec{
		Name: "compas",
		Cols: []Col{
			{
				Name:    "Gender",
				Values:  []string{"Male", "Female"},
				Weights: []float64{0.78, 0.22},
			},
			{
				Name:    "Age",
				Values:  []string{"under 20", "20-39", "40-59", "over 60"},
				Weights: []float64{0.03, 0.66, 0.27, 0.04},
			},
			{
				Name:    "Race",
				Values:  []string{"African-American", "Caucasian", "Hispanic", "Other"},
				Weights: []float64{0.45, 0.36, 0.14, 0.05},
			},
			{
				Name:    "MaritalStatus",
				Values:  []string{"Single", "Married", "Divorced", "Separated", "Significant Other", "Widowed", "Unknown"},
				Weights: []float64{0.75, 0.13, 0.06, 0.03, 0.02, 0.006, 0.004},
				Parent:  "Age",
				// Younger defendants are overwhelmingly single; older ones
				// carry most of the divorced/widowed mass.
				Fidelity: 0.55,
				CPT: map[string][]float64{
					"under 20": {0.97, 0.01, 0.00, 0.00, 0.02, 0.00, 0.00},
					"20-39":    {0.82, 0.10, 0.04, 0.02, 0.02, 0.00, 0.00},
					"40-59":    {0.45, 0.25, 0.18, 0.07, 0.02, 0.02, 0.01},
					"over 60":  {0.25, 0.35, 0.22, 0.05, 0.02, 0.10, 0.01},
				},
			},
			{
				Name:     "Language",
				Values:   []string{"English", "Spanish"},
				Weights:  []float64{0.97, 0.03},
				Parent:   "Race",
				Fidelity: 0.80,
				CPT: map[string][]float64{
					"African-American": {0.999, 0.001},
					"Caucasian":        {0.998, 0.002},
					"Hispanic":         {0.78, 0.22},
					"Other":            {0.95, 0.05},
				},
			},
			{
				Name:    "Agency",
				Values:  []string{"PRETRIAL", "Probation", "DRRD", "Broward County"},
				Weights: []float64{0.55, 0.35, 0.06, 0.04},
			},
			{
				Name:     "LegalStatus",
				Values:   []string{"Pretrial", "Post Sentence", "Probation Violator", "Conditional Release", "Other"},
				Weights:  []float64{0.52, 0.28, 0.12, 0.05, 0.03},
				Parent:   "Agency",
				Fidelity: 0.70,
				CPT: map[string][]float64{
					"PRETRIAL":       {0.88, 0.05, 0.04, 0.02, 0.01},
					"Probation":      {0.10, 0.55, 0.25, 0.07, 0.03},
					"DRRD":           {0.30, 0.40, 0.15, 0.10, 0.05},
					"Broward County": {0.40, 0.30, 0.15, 0.10, 0.05},
				},
			},
			{
				Name:     "CustodyStatus",
				Values:   []string{"Jail Inmate", "Probation", "Pretrial Defendant", "Prison Inmate"},
				Weights:  []float64{0.35, 0.30, 0.25, 0.10},
				Parent:   "LegalStatus",
				Fidelity: 0.75,
				CPT: map[string][]float64{
					"Pretrial":            {0.45, 0.02, 0.50, 0.03},
					"Post Sentence":       {0.30, 0.45, 0.05, 0.20},
					"Probation Violator":  {0.40, 0.45, 0.05, 0.10},
					"Conditional Release": {0.15, 0.60, 0.15, 0.10},
					"Other":               {0.30, 0.30, 0.25, 0.15},
				},
			},
			{
				Name:    "AssessmentReason",
				Values:  []string{"Intake", "Review", "Appeal"},
				Weights: []float64{0.85, 0.12, 0.03},
			},
			{
				Name:    "Scale_ID",
				Values:  []string{"7", "8", "18"},
				Weights: []float64{0.34, 0.33, 0.33},
			},
			{
				Name:   "DisplayText",
				Values: []string{"Risk of Violence", "Risk of Recidivism", "Risk of Failure to Appear"},
				Parent: "Scale_ID",
				Map: map[string]string{
					"7":  "Risk of Violence",
					"8":  "Risk of Recidivism",
					"18": "Risk of Failure to Appear",
				},
			},
			{
				Name:    "DecileScore",
				Values:  decile,
				Weights: []float64{0.18, 0.14, 0.12, 0.11, 0.10, 0.09, 0.08, 0.07, 0.06, 0.05},
				Parent:  "Age",
				// Younger defendants skew toward higher scores.
				Fidelity: 0.35,
				CPT: map[string][]float64{
					"under 20": {0.06, 0.07, 0.08, 0.09, 0.10, 0.11, 0.12, 0.13, 0.12, 0.12},
					"20-39":    {0.12, 0.12, 0.11, 0.11, 0.10, 0.10, 0.09, 0.09, 0.08, 0.08},
					"40-59":    {0.22, 0.17, 0.14, 0.11, 0.09, 0.08, 0.07, 0.05, 0.04, 0.03},
					"over 60":  {0.34, 0.22, 0.14, 0.09, 0.07, 0.05, 0.04, 0.03, 0.01, 0.01},
				},
			},
			{
				Name:   "ScoreText",
				Values: []string{"Low", "Medium", "High"},
				Parent: "DecileScore",
				Map: map[string]string{
					"1": "Low", "2": "Low", "3": "Low", "4": "Low",
					"5": "Medium", "6": "Medium", "7": "Medium",
					"8": "High", "9": "High", "10": "High",
				},
			},
			{
				Name:     "RecSupervisionLevel",
				Values:   recLevels,
				Weights:  []float64{0.45, 0.30, 0.15, 0.10},
				Parent:   "DecileScore",
				Fidelity: 0.85,
				CPT: map[string][]float64{
					"1":  {0.95, 0.05, 0.00, 0.00},
					"2":  {0.90, 0.09, 0.01, 0.00},
					"3":  {0.75, 0.22, 0.03, 0.00},
					"4":  {0.55, 0.38, 0.06, 0.01},
					"5":  {0.25, 0.55, 0.17, 0.03},
					"6":  {0.10, 0.55, 0.28, 0.07},
					"7":  {0.05, 0.40, 0.40, 0.15},
					"8":  {0.02, 0.18, 0.50, 0.30},
					"9":  {0.01, 0.09, 0.40, 0.50},
					"10": {0.00, 0.04, 0.26, 0.70},
				},
			},
			{
				Name:   "RecSupervisionLevelText",
				Values: []string{"Low", "Medium", "Medium with Override Consideration", "High"},
				Parent: "RecSupervisionLevel",
				Map: map[string]string{
					"1": "Low",
					"2": "Medium",
					"3": "Medium with Override Consideration",
					"4": "High",
				},
			},
			{
				Name:     "SupervisionLevel",
				Values:   []string{"Standard", "Enhanced", "Intensive", "Specialized"},
				Weights:  []float64{0.50, 0.28, 0.14, 0.08},
				Parent:   "RecSupervisionLevel",
				Fidelity: 0.60,
				CPT: map[string][]float64{
					"1": {0.80, 0.15, 0.03, 0.02},
					"2": {0.35, 0.45, 0.13, 0.07},
					"3": {0.12, 0.35, 0.40, 0.13},
					"4": {0.05, 0.20, 0.50, 0.25},
				},
			},
			{
				Name:    "IsCompleted",
				Values:  []string{"Yes", "No"},
				Weights: []float64{0.93, 0.07},
			},
		},
	}
}

// COMPAS generates the COMPAS emulator with the given row count (COMPASRows
// for the paper-scale dataset).
func COMPAS(rows int, seed uint64) (*dataset.Dataset, error) {
	spec := COMPASSpec()
	return spec.Generate(rows, seed)
}
