package datagen

import (
	"fmt"
	"math/rand/v2"

	"pcbl/internal/dataset"
)

// Augment returns a new dataset consisting of d's rows followed by extra
// rows whose attribute values are drawn independently and uniformly from
// each attribute's active domain — the procedure of the paper's data-size
// scalability experiment (§IV-C, Fig 7): "we gradually increased the data
// size by adding randomly generated tuples". As the paper observes, such
// tuples introduce patterns absent from the original data, which flattens
// correlations and can shrink the candidate space.
func Augment(d *dataset.Dataset, extra int, seed uint64) (*dataset.Dataset, error) {
	if extra < 0 {
		return nil, fmt.Errorf("datagen: negative augmentation %d", extra)
	}
	b := dataset.NewBuilder(d.Name(), d.AttrNames()...)
	// Re-intern domains in identifier order so ids carry over unchanged.
	for a := 0; a < d.NumAttrs(); a++ {
		for _, v := range d.Attr(a).Domain() {
			if _, err := b.InternValue(a, v); err != nil {
				return nil, err
			}
		}
	}
	ids := make([]uint16, d.NumAttrs())
	for r := 0; r < d.NumRows(); r++ {
		for a := range ids {
			ids[a] = d.ID(r, a)
		}
		b.AppendIDs(ids...)
	}
	rng := rand.New(rand.NewPCG(seed, 0xA076_1D64_78BD_642F))
	for i := 0; i < extra; i++ {
		for a := 0; a < d.NumAttrs(); a++ {
			dom := d.Attr(a).DomainSize()
			if dom == 0 {
				ids[a] = dataset.Null
				continue
			}
			ids[a] = uint16(1 + rng.IntN(dom))
		}
		b.AppendIDs(ids...)
	}
	return b.Build()
}

// Scale returns d augmented to factor × |d| rows (factor ≥ 1), the exact
// workload grid of Fig 7.
func Scale(d *dataset.Dataset, factor int, seed uint64) (*dataset.Dataset, error) {
	if factor < 1 {
		return nil, fmt.Errorf("datagen: scale factor must be ≥ 1, got %d", factor)
	}
	return Augment(d, (factor-1)*d.NumRows(), seed)
}
