package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pcbl/internal/dataset"
)

// CreditCardRows is the row count of the UCI "default of credit card
// clients" dataset the paper evaluates on.
const CreditCardRows = 30000

// CreditCardBins is the paper's bucketization width: "We bucketize each
// numerical attribute into 5 bins" (§IV-A).
const CreditCardBins = 5

// CreditCard generates the Credit Card emulator: 24 attributes matching the
// UCI schema (demographics, credit limit, six monthly repayment statuses,
// six monthly bill amounts, six monthly payment amounts, default flag), with
// every numeric attribute bucketized into CreditCardBins equal-frequency
// bins as in the paper's preparation. The monthly columns are serially
// correlated — a client's repayment status and bill this month strongly
// predict next month's — giving the label search the correlated attribute
// groups the paper's results rely on.
func CreditCard(rows int, seed uint64) (*dataset.Dataset, error) {
	raw, err := creditCardRaw(rows, seed)
	if err != nil {
		return nil, err
	}
	return dataset.BucketizeAllNumeric(raw, dataset.BucketizeOptions{
		Bins:     CreditCardBins,
		Strategy: dataset.EqualFrequency,
	})
}

// creditCardRaw generates the pre-bucketization table with raw numeric
// columns, mirroring what the UCI CSV looks like after dropping the ID.
func creditCardRaw(rows int, seed uint64) (*dataset.Dataset, error) {
	names := []string{
		"LIMIT_BAL", "SEX", "EDUCATION", "MARRIAGE", "AGE",
		"PAY_0", "PAY_2", "PAY_3", "PAY_4", "PAY_5", "PAY_6",
		"BILL_AMT1", "BILL_AMT2", "BILL_AMT3", "BILL_AMT4", "BILL_AMT5", "BILL_AMT6",
		"PAY_AMT1", "PAY_AMT2", "PAY_AMT3", "PAY_AMT4", "PAY_AMT5", "PAY_AMT6",
		"default",
	}
	b := dataset.NewBuilder("creditcard", names...)
	rng := rand.New(rand.NewPCG(seed, 0xC0FFEE123456789D))
	row := make([]string, len(names))
	for r := 0; r < rows; r++ {
		// Credit limit: 10k–500k NT$, log-skewed, rounded to 10k.
		limit := math.Exp(rng.NormFloat64()*0.7+11.5) / 10000
		limit = math.Max(1, math.Min(50, math.Round(limit)))
		limitBal := limit * 10000
		row[0] = fmt.Sprintf("%.0f", limitBal)

		sex := "female"
		if rng.Float64() < 0.40 {
			sex = "male"
		}
		row[1] = sex

		eduDraw := rng.Float64()
		switch {
		case eduDraw < 0.47:
			row[2] = "university"
		case eduDraw < 0.82:
			row[2] = "graduate school"
		case eduDraw < 0.985:
			row[2] = "high school"
		default:
			row[2] = "others"
		}

		marDraw := rng.Float64()
		switch {
		case marDraw < 0.532:
			row[3] = "single"
		case marDraw < 0.987:
			row[3] = "married"
		default:
			row[3] = "others"
		}

		// Age 21–79, right-skewed; correlated with marriage.
		age := 21 + int(math.Abs(rng.NormFloat64())*11)
		if row[3] == "married" {
			age += 6
		}
		if age > 79 {
			age = 79
		}
		row[4] = fmt.Sprint(age)

		// Repayment statuses: a Markov chain over {-2,-1,0,1,…,8}.
		// PAY_6 is the oldest month; the CSV orders newest first.
		pays := make([]int, 6)
		pays[5] = initialPayStatus(rng)
		for m := 4; m >= 0; m-- {
			pays[m] = nextPayStatus(rng, pays[m+1])
		}
		for m := 0; m < 6; m++ {
			row[5+m] = fmt.Sprint(pays[m])
		}

		// Bill amounts: random walk anchored to the credit limit.
		bills := make([]float64, 6)
		util := 0.02 + 0.55*rng.Float64() // starting utilization
		bills[5] = limitBal * util
		for m := 4; m >= 0; m-- {
			drift := 1 + rng.NormFloat64()*0.18
			if drift < 0.2 {
				drift = 0.2
			}
			bills[m] = bills[m+1] * drift
			if bills[m] > limitBal*1.2 {
				bills[m] = limitBal * 1.2
			}
		}
		for m := 0; m < 6; m++ {
			row[11+m] = fmt.Sprintf("%.0f", math.Max(0, bills[m]))
		}

		// Payment amounts: fraction of the bill, higher when the status
		// says "paid duly".
		for m := 0; m < 6; m++ {
			frac := 0.04 + 0.06*rng.Float64()
			if pays[m] == -1 {
				frac = 1.0
			} else if pays[m] == -2 {
				frac = 0
			} else if pays[m] > 0 {
				frac = 0.01 * rng.Float64()
			}
			row[17+m] = fmt.Sprintf("%.0f", bills[m]*frac)
		}

		// Default next month: driven by the recent repayment statuses.
		pDefault := 0.08
		if pays[0] >= 2 {
			pDefault = 0.65
		} else if pays[0] == 1 {
			pDefault = 0.33
		} else if pays[1] >= 2 {
			pDefault = 0.40
		}
		if rng.Float64() < pDefault {
			row[23] = "yes"
		} else {
			row[23] = "no"
		}

		b.AppendStrings(row...)
	}
	return b.Build()
}

// initialPayStatus draws the oldest month's repayment status.
func initialPayStatus(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.18:
		return -2 // no consumption
	case x < 0.38:
		return -1 // paid in full
	case x < 0.85:
		return 0 // revolving credit
	case x < 0.93:
		return 1
	case x < 0.97:
		return 2
	case x < 0.985:
		return 3
	default:
		return 4
	}
}

// nextPayStatus advances the repayment-status Markov chain by one month
// (toward the present): delinquency tends to persist or deepen, good
// standing tends to persist.
func nextPayStatus(rng *rand.Rand, prev int) int {
	x := rng.Float64()
	switch {
	case prev >= 1: // already delinquent
		switch {
		case x < 0.45:
			if prev < 8 {
				return prev + 1 // delinquency deepens
			}
			return 8
		case x < 0.70:
			return prev // unchanged
		case x < 0.90:
			return 0 // back to revolving
		default:
			return -1 // paid off
		}
	case prev == 0: // revolving
		switch {
		case x < 0.72:
			return 0
		case x < 0.84:
			return -1
		case x < 0.88:
			return -2
		default:
			return 1
		}
	default: // -1 or -2: in good standing
		switch {
		case x < 0.55:
			return prev
		case x < 0.80:
			return 0
		case x < 0.92:
			return -1
		default:
			return 1
		}
	}
}
