package datagen

import "pcbl/internal/dataset"

// BlueNileRows is the row count of the paper's BlueNile diamond catalog.
const BlueNileRows = 116300

// BlueNileSpec returns the generation spec for the BlueNile emulator: 7
// categorical attributes (shape, cut, color, clarity, polish, symmetry,
// fluorescence) matching the published catalog's schema. Grading attributes
// are correlated — a diamond with an excellent cut overwhelmingly has
// excellent polish and symmetry — which is the correlation structure a
// pattern-count label must capture to beat independence estimation.
func BlueNileSpec() Spec {
	cuts := []string{"Good", "Very Good", "Ideal", "Astor Ideal"}
	grades := []string{"Good", "Very Good", "Excellent", "Ideal"}
	return Spec{
		Name: "bluenile",
		Cols: []Col{
			{
				Name: "shape",
				Values: []string{
					"Round", "Princess", "Cushion", "Emerald", "Oval",
					"Radiant", "Asscher", "Marquise", "Heart", "Pear",
				},
				Weights: ZipfWeights(10, 1.3),
			},
			{
				Name:    "cut",
				Values:  cuts,
				Weights: []float64{0.12, 0.33, 0.50, 0.05},
			},
			{
				Name:    "color",
				Values:  []string{"D", "E", "F", "G", "H", "I", "J"},
				Weights: []float64{0.11, 0.15, 0.17, 0.20, 0.17, 0.12, 0.08},
			},
			{
				Name:    "clarity",
				Values:  []string{"FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1", "SI2"},
				Weights: []float64{0.01, 0.05, 0.09, 0.13, 0.22, 0.25, 0.17, 0.08},
			},
			{
				Name:     "polish",
				Values:   grades,
				Weights:  []float64{0.05, 0.25, 0.55, 0.15},
				Parent:   "cut",
				Fidelity: 0.78,
				CPT: map[string][]float64{
					"Good":        {0.55, 0.35, 0.09, 0.01},
					"Very Good":   {0.08, 0.52, 0.36, 0.04},
					"Ideal":       {0.01, 0.09, 0.62, 0.28},
					"Astor Ideal": {0.00, 0.01, 0.24, 0.75},
				},
			},
			{
				Name:     "symmetry",
				Values:   grades,
				Weights:  []float64{0.05, 0.27, 0.53, 0.15},
				Parent:   "polish",
				Fidelity: 0.72,
				CPT: map[string][]float64{
					"Good":      {0.58, 0.33, 0.08, 0.01},
					"Very Good": {0.07, 0.55, 0.34, 0.04},
					"Excellent": {0.01, 0.10, 0.64, 0.25},
					"Ideal":     {0.00, 0.02, 0.22, 0.76},
				},
			},
			{
				Name:    "fluorescence",
				Values:  []string{"None", "Faint", "Medium", "Strong", "Very Strong"},
				Weights: []float64{0.62, 0.19, 0.11, 0.06, 0.02},
			},
		},
	}
}

// BlueNile generates the BlueNile emulator with the given row count
// (BlueNileRows for the paper-scale dataset).
func BlueNile(rows int, seed uint64) (*dataset.Dataset, error) {
	spec := BlueNileSpec()
	return spec.Generate(rows, seed)
}
