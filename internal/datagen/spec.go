// Package datagen synthesizes the evaluation datasets. The paper evaluates
// on three real datasets (BlueNile, COMPAS, Credit Card) that are not
// redistributable and not reachable from an offline build, so this package
// provides seeded emulators that reproduce each dataset's published shape —
// row count, attribute count, per-attribute cardinalities — and, crucially,
// the correlation structure that drives the paper's results (see DESIGN.md,
// "Substitutions"). It also provides the random-tuple augmentation used by
// the data-size scalability experiment (Fig 7).
//
// The generation model is a simple Bayesian-network-style specification:
// each column is either an independent categorical draw, a deterministic
// function of an earlier column, or a conditional draw given an earlier
// column, optionally mixed with an independent draw ("fidelity" < 1).
package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pcbl/internal/dataset"
)

// Col specifies the generation model of one column.
type Col struct {
	// Name is the attribute name.
	Name string
	// Values is the domain the column draws from. For purely Map-derived
	// columns it must still list every producible value.
	Values []string
	// Weights are the marginal draw weights aligned with Values; uniform
	// when nil. They need not sum to 1.
	Weights []float64
	// Parent, when non-empty, names an earlier column this one depends on.
	Parent string
	// Map deterministically derives the value from the parent's value.
	// Missing parent values fall back to the marginal draw.
	Map map[string]string
	// CPT gives per-parent-value draw weights over Values; missing parent
	// values fall back to the marginal draw. Ignored when Map is set.
	CPT map[string][]float64
	// Fidelity is the probability of using the dependent rule (Map or
	// CPT) rather than the marginal draw. Defaults to 1 when a Parent is
	// set. A deterministic pair of columns (fidelity 1 with Map) is how
	// the emulators plant the strong correlations the paper's optimal
	// labels exploit.
	Fidelity float64
}

// Spec is an ordered list of column models; parents must precede children.
type Spec struct {
	// Name is the generated dataset's display name.
	Name string
	// Cols are the column models in generation order.
	Cols []Col
}

// Validate checks structural consistency of the spec.
func (s *Spec) Validate() error {
	pos := make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		if c.Name == "" {
			return fmt.Errorf("datagen: column %d has no name", i)
		}
		if _, dup := pos[c.Name]; dup {
			return fmt.Errorf("datagen: duplicate column %q", c.Name)
		}
		if len(c.Values) == 0 {
			return fmt.Errorf("datagen: column %q has an empty domain", c.Name)
		}
		if c.Weights != nil && len(c.Weights) != len(c.Values) {
			return fmt.Errorf("datagen: column %q has %d weights for %d values", c.Name, len(c.Weights), len(c.Values))
		}
		if c.Parent != "" {
			p, ok := pos[c.Parent]
			if !ok {
				return fmt.Errorf("datagen: column %q depends on %q which does not precede it", c.Name, c.Parent)
			}
			_ = p
			if c.Map == nil && c.CPT == nil {
				return fmt.Errorf("datagen: column %q names a parent but has neither Map nor CPT", c.Name)
			}
			valSet := make(map[string]bool, len(c.Values))
			for _, v := range c.Values {
				valSet[v] = true
			}
			for from, to := range c.Map {
				_ = from
				if !valSet[to] {
					return fmt.Errorf("datagen: column %q maps to %q which is outside its domain", c.Name, to)
				}
			}
			for pv, w := range c.CPT {
				if len(w) != len(c.Values) {
					return fmt.Errorf("datagen: column %q CPT row %q has %d weights for %d values", c.Name, pv, len(w), len(c.Values))
				}
			}
		} else if c.Map != nil || c.CPT != nil {
			return fmt.Errorf("datagen: column %q has a dependent rule but no parent", c.Name)
		}
		pos[c.Name] = i
	}
	return nil
}

// Generate synthesizes rows tuples under the spec with a deterministic seed.
func (s *Spec) Generate(rows int, seed uint64) (*dataset.Dataset, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if rows < 0 {
		return nil, fmt.Errorf("datagen: negative row count %d", rows)
	}
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	b := dataset.NewBuilder(s.Name, names...)
	// Pre-intern full domains so identifiers are stable across row counts
	// and seeds: value k of column i always gets identifier k+1.
	for i, c := range s.Cols {
		for _, v := range c.Values {
			if _, err := b.InternValue(i, v); err != nil {
				return nil, err
			}
		}
	}
	// Pre-compute cumulative weights.
	marg := make([][]float64, len(s.Cols))
	cpts := make([]map[string][]float64, len(s.Cols))
	for i, c := range s.Cols {
		marg[i] = cumulative(c.Weights, len(c.Values))
		if c.CPT != nil {
			m := make(map[string][]float64, len(c.CPT))
			for pv, w := range c.CPT {
				m[pv] = cumulative(w, len(c.Values))
			}
			cpts[i] = m
		}
	}
	pos := make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		pos[c.Name] = i
	}

	rng := rand.New(rand.NewPCG(seed, 0xDA3E39CB94B95BDB))
	vals := make([]string, len(s.Cols))
	for r := 0; r < rows; r++ {
		for i, c := range s.Cols {
			dependent := c.Parent != ""
			if dependent && c.Fidelity > 0 && c.Fidelity < 1 {
				dependent = rng.Float64() < c.Fidelity
			}
			if dependent {
				pv := vals[pos[c.Parent]]
				if c.Map != nil {
					if to, ok := c.Map[pv]; ok {
						vals[i] = to
						continue
					}
				} else if cum, ok := cpts[i][pv]; ok {
					vals[i] = c.Values[draw(rng, cum)]
					continue
				}
			}
			vals[i] = c.Values[draw(rng, marg[i])]
		}
		b.AppendStrings(vals...)
	}
	return b.Build()
}

// cumulative turns weights (uniform when nil) into a cumulative sum vector.
func cumulative(w []float64, n int) []float64 {
	cum := make([]float64, n)
	run := 0.0
	for i := 0; i < n; i++ {
		inc := 1.0
		if w != nil {
			inc = w[i]
			if inc < 0 {
				inc = 0
			}
		}
		run += inc
		cum[i] = run
	}
	return cum
}

// draw samples an index from a cumulative weight vector.
func draw(rng *rand.Rand, cum []float64) int {
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	// Linear scan: domains are small (≤ ~15 values).
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// ZipfWeights returns n weights following a Zipf distribution with exponent
// s (weight of rank r ∝ 1/r^s); handy for skewed marginals.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}
