package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"pcbl/internal/core"
	"pcbl/internal/lattice"
)

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Cols: []Col{{Name: "", Values: []string{"a"}}}},
		{Cols: []Col{{Name: "x", Values: nil}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}}, {Name: "x", Values: []string{"a"}}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}, Weights: []float64{1, 2}}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}, Parent: "nope", Map: map[string]string{"a": "a"}}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}}, {Name: "y", Values: []string{"b"}, Parent: "x"}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}}, {Name: "y", Values: []string{"b"}, Parent: "x", Map: map[string]string{"a": "zz"}}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}}, {Name: "y", Values: []string{"b"}, Parent: "x", CPT: map[string][]float64{"a": {1, 2}}}}},
		{Cols: []Col{{Name: "x", Values: []string{"a"}, Map: map[string]string{"a": "a"}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := BlueNileSpec()
	a, err := spec.Generate(500, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(500, 99)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 500; r++ {
		for c := 0; c < a.NumAttrs(); c++ {
			if a.ID(r, c) != b.ID(r, c) {
				t.Fatalf("row %d col %d differs between identical seeds", r, c)
			}
		}
	}
	c, err := spec.Generate(500, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < 500 && same; r++ {
		for i := 0; i < a.NumAttrs(); i++ {
			if a.ID(r, i) != c.ID(r, i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestBlueNileShape(t *testing.T) {
	d, err := BlueNile(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumAttrs() != 7 {
		t.Fatalf("attrs = %d, want 7", d.NumAttrs())
	}
	if d.NumRows() != 5000 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	wantDoms := map[string]int{"shape": 10, "cut": 4, "color": 7, "clarity": 8, "polish": 4, "symmetry": 4, "fluorescence": 5}
	for name, dom := range wantDoms {
		i, ok := d.AttrIndex(name)
		if !ok {
			t.Fatalf("missing attribute %q", name)
		}
		if got := d.Attr(i).DomainSize(); got != dom {
			t.Errorf("%s domain = %d, want %d", name, got, dom)
		}
	}
}

func TestCOMPASShape(t *testing.T) {
	d, err := COMPAS(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumAttrs() != 17 {
		t.Fatalf("attrs = %d, want 17", d.NumAttrs())
	}
	// Gender marginal ≈ 78/22 (Fig 1).
	gi, _ := d.AttrIndex("Gender")
	counts := d.ValueCounts(gi)
	maleID, _ := d.Attr(gi).ID("Male")
	frac := float64(counts[maleID-1]) / 5000
	if frac < 0.74 || frac > 0.82 {
		t.Errorf("male fraction = %v, want ≈ 0.78", frac)
	}
}

// TestCOMPASDeterministicPairs: the emulator plants the deterministic
// attribute pairs the paper's optimal label exploits (§IV-E).
func TestCOMPASDeterministicPairs(t *testing.T) {
	d, err := COMPAS(3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{
		{"Scale_ID", "DisplayText"},
		{"RecSupervisionLevel", "RecSupervisionLevelText"},
		{"DecileScore", "ScoreText"},
	}
	for _, pair := range pairs {
		ai, _ := d.AttrIndex(pair[0])
		bi, _ := d.AttrIndex(pair[1])
		seen := make(map[uint16]uint16)
		for r := 0; r < d.NumRows(); r++ {
			a, b := d.ID(r, ai), d.ID(r, bi)
			if prev, ok := seen[a]; ok && prev != b {
				t.Errorf("%s=%d maps to both %d and %d — pair not functional", pair[0], a, prev, b)
				break
			}
			seen[a] = b
		}
	}
}

// TestCOMPASCorrelationStrength: the deterministic cluster must make a label
// over it dramatically better than independence for those attributes.
func TestCOMPASCorrelationStrength(t *testing.T) {
	d, err := COMPAS(5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := d.ProjectNames("DecileScore", "ScoreText", "RecSupervisionLevel")
	if err != nil {
		t.Fatal(err)
	}
	ps := core.DistinctTuples(proj)
	indep := core.BuildLabel(proj, lattice.AttrSet(0))
	labeled := core.BuildLabel(proj, lattice.NewAttrSet(0, 1)) // DecileScore+ScoreText
	ei := core.Evaluate(indep, ps, core.EvalOptions{})
	el := core.Evaluate(labeled, ps, core.EvalOptions{})
	if el.MaxAbs >= ei.MaxAbs {
		t.Errorf("correlated label max err %v not below independence %v", el.MaxAbs, ei.MaxAbs)
	}
}

func TestCreditCardShape(t *testing.T) {
	d, err := CreditCard(4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumAttrs() != 24 {
		t.Fatalf("attrs = %d, want 24", d.NumAttrs())
	}
	if d.NumRows() != 4000 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	// Every attribute must be categorical with a small domain after the
	// 5-bin bucketization (repayment statuses keep ≤ 11 raw values only if
	// they had ≤ 5 distinct values; otherwise they are bucketized too).
	for i := 0; i < d.NumAttrs(); i++ {
		if got := d.Attr(i).DomainSize(); got > CreditCardBins && got > 11 {
			t.Errorf("%s domain = %d, too large", d.Attr(i).Name(), got)
		}
	}
}

// TestCreditCardSerialCorrelation: adjacent monthly repayment statuses must
// correlate far above independence.
func TestCreditCardSerialCorrelation(t *testing.T) {
	d, err := CreditCard(4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := d.AttrIndex("PAY_0")
	p2, _ := d.AttrIndex("PAY_2")
	agree := 0
	for r := 0; r < d.NumRows(); r++ {
		if d.Value(r, p0) == d.Value(r, p2) {
			agree++
		}
	}
	frac := float64(agree) / float64(d.NumRows())
	if frac < 0.30 {
		t.Errorf("adjacent-month agreement %v too low — serial correlation missing", frac)
	}
}

func TestAugment(t *testing.T) {
	d, err := BlueNile(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Augment(d, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if aug.NumRows() != 3000 {
		t.Fatalf("rows = %d, want 3000", aug.NumRows())
	}
	// Prefix preserved exactly.
	for r := 0; r < 1000; r += 97 {
		for a := 0; a < d.NumAttrs(); a++ {
			if aug.ID(r, a) != d.ID(r, a) {
				t.Fatalf("original row %d modified", r)
			}
		}
	}
	// Domains unchanged (augmentation draws from active domains).
	for a := 0; a < d.NumAttrs(); a++ {
		if aug.Attr(a).DomainSize() != d.Attr(a).DomainSize() {
			t.Errorf("domain of %s changed", d.Attr(a).Name())
		}
	}
	if _, err := Augment(d, -1, 0); err == nil {
		t.Error("negative augmentation accepted")
	}
}

func TestScale(t *testing.T) {
	d, err := BlueNile(500, 9)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Scale(d, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 1500 {
		t.Errorf("rows = %d, want 1500", s.NumRows())
	}
	if _, err := Scale(d, 0, 0); err == nil {
		t.Error("factor 0 accepted")
	}
}

// TestAugmentUniformMarginals (property): augmented tuples are uniform over
// each domain, so with heavy augmentation marginals approach uniformity.
func TestAugmentUniformMarginals(t *testing.T) {
	d, err := BlueNile(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Augment(d, 20000, 12)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := aug.AttrIndex("cut")
	fr := aug.Fractions(ci)
	for _, f := range fr {
		if math.Abs(f-0.25) > 0.06 {
			t.Errorf("cut fraction %v too far from uniform 0.25", f)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(5, 1)
	if len(w) != 5 {
		t.Fatal("length wrong")
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Error("weights not decreasing")
		}
	}
	if math.Abs(w[0]-1) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Errorf("w = %v", w)
	}
}

// TestGenerateRowCountProperty (property): generation honors arbitrary row
// counts.
func TestGenerateRowCountProperty(t *testing.T) {
	spec := Spec{Name: "tiny", Cols: []Col{{Name: "x", Values: []string{"a", "b"}}}}
	prop := func(n uint16) bool {
		rows := int(n % 2048)
		d, err := spec.Generate(rows, 1)
		return err == nil && d.NumRows() == rows
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpecsValidateThemselves(t *testing.T) {
	for _, s := range []Spec{BlueNileSpec(), COMPASSpec()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
