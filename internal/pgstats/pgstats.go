// Package pgstats reimplements the PostgreSQL row-count estimator the paper
// uses as its DBMS baseline (§IV-A "PostgreSQL"): ANALYZE-style uniform row
// sampling, per-attribute most-common-value (MCV) lists and n_distinct
// estimation stored pg_statistic-style, the var_eq_const selectivity rule
// for a single equality clause, and independence multiplication across the
// clauses of a conjunctive pattern. Like PostgreSQL's 1-D statistics, the
// estimator captures marginal distributions well and cross-attribute
// correlation not at all — which is exactly the behaviour the paper's gray
// baseline lines exhibit.
package pgstats

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"pcbl/internal/core"
	"pcbl/internal/dataset"
	"pcbl/internal/lattice"
)

// Options configures Analyze.
type Options struct {
	// StatisticsTarget mirrors default_statistics_target: the maximum MCV
	// list length per attribute. Default 100.
	StatisticsTarget int
	// SampleRows is the ANALYZE sample size; PostgreSQL uses
	// 300 × statistics target. Default 300 × StatisticsTarget.
	SampleRows int
	// Seed makes the ANALYZE sample deterministic.
	Seed uint64
}

// attrStats is one pg_statistic row: the per-attribute statistics ANALYZE
// would store.
type attrStats struct {
	nullFrac  float64   // fraction of sampled rows that are NULL
	nDistinct float64   // estimated number of distinct non-null values
	mcvFreq   []float64 // mcvFreq[id-1] = MCV frequency, 0 when not an MCV
	numMCV    int
	sumMCV    float64
}

// Stats is the collected statistics for a dataset; it implements
// core.Estimator.
type Stats struct {
	d         *dataset.Dataset
	totalRows int
	attrs     []attrStats
	target    int
}

// Analyze samples the dataset and builds per-attribute statistics.
func Analyze(d *dataset.Dataset, opts Options) (*Stats, error) {
	target := opts.StatisticsTarget
	if target <= 0 {
		target = 100
	}
	sampleRows := opts.SampleRows
	if sampleRows <= 0 {
		sampleRows = 300 * target
	}
	n := d.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("pgstats: cannot analyze an empty dataset")
	}
	// Uniform sample of row indices (with replacement is fine at ANALYZE
	// scale; PostgreSQL uses two-stage Vitter sampling, whose estimates
	// this approximates).
	rng := rand.New(rand.NewPCG(opts.Seed, 0x853C49E6748FEA9B))
	rows := make([]int, 0, sampleRows)
	if sampleRows >= n {
		for r := 0; r < n; r++ {
			rows = append(rows, r)
		}
	} else {
		for i := 0; i < sampleRows; i++ {
			rows = append(rows, rng.IntN(n))
		}
	}
	s := &Stats{d: d, totalRows: n, target: target, attrs: make([]attrStats, d.NumAttrs())}
	for a := 0; a < d.NumAttrs(); a++ {
		s.attrs[a] = analyzeAttr(d, a, rows, target)
	}
	return s, nil
}

// analyzeAttr computes one attribute's statistics from the sampled rows.
func analyzeAttr(d *dataset.Dataset, a int, rows []int, target int) attrStats {
	domain := d.Attr(a).DomainSize()
	counts := make([]int, domain)
	nulls := 0
	for _, r := range rows {
		id := d.ID(r, a)
		if id == dataset.Null {
			nulls++
			continue
		}
		counts[id-1]++
	}
	sampleN := len(rows)
	nonNull := sampleN - nulls
	st := attrStats{mcvFreq: make([]float64, domain)}
	if sampleN > 0 {
		st.nullFrac = float64(nulls) / float64(sampleN)
	}
	if nonNull == 0 {
		st.nDistinct = 0
		return st
	}

	// Distinct estimation (PostgreSQL's std_typanalyze logic): if every
	// sampled value appeared more than once, assume the sample saw the
	// whole domain; otherwise apply the Haas–Stokes Duj1 estimator.
	dDistinct, f1 := 0, 0
	for _, c := range counts {
		if c > 0 {
			dDistinct++
			if c == 1 {
				f1++
			}
		}
	}
	if f1 == 0 {
		st.nDistinct = float64(dDistinct)
	} else {
		totalRows := float64(d.NumRows())
		nf := float64(nonNull)
		denom := nf - float64(f1) + float64(f1)*nf/totalRows
		if denom <= 0 {
			denom = 1
		}
		est := nf * float64(dDistinct) / denom
		if est < float64(dDistinct) {
			est = float64(dDistinct)
		}
		if est > totalRows {
			est = totalRows
		}
		st.nDistinct = est
	}

	// MCV list: the up-to-target most common sampled values. PostgreSQL
	// keeps a value only when it appears more than once in the sample.
	type vc struct {
		id uint16
		c  int
	}
	var cand []vc
	for i, c := range counts {
		if c > 1 || (c == 1 && dDistinct <= target) {
			cand = append(cand, vc{uint16(i + 1), c})
		}
	}
	sort.Slice(cand, func(x, y int) bool {
		if cand[x].c != cand[y].c {
			return cand[x].c > cand[y].c
		}
		return cand[x].id < cand[y].id
	})
	if len(cand) > target {
		cand = cand[:target]
	}
	for _, e := range cand {
		f := float64(e.c) / float64(sampleN)
		st.mcvFreq[e.id-1] = f
		st.sumMCV += f
		st.numMCV++
	}
	return st
}

// TotalRows returns |D| as known to the estimator.
func (s *Stats) TotalRows() int { return s.totalRows }

// StatisticRows returns the number of pg_statistic rows the statistics
// occupy (one per attribute), for size reporting à la §IV-B.
func (s *Stats) StatisticRows() int { return len(s.attrs) }

// MCVEntries returns the total number of (value, frequency) pairs stored
// across all MCV lists — the estimator's actual space consumption.
func (s *Stats) MCVEntries() int {
	n := 0
	for _, a := range s.attrs {
		n += a.numMCV
	}
	return n
}

// EqSel returns the selectivity of the clause A_a = id, following
// PostgreSQL's var_eq_const: the MCV frequency when the value is an MCV,
// otherwise the remaining probability mass spread evenly over the distinct
// values not in the MCV list.
func (s *Stats) EqSel(a int, id uint16) float64 {
	st := &s.attrs[a]
	if id == dataset.Null || int(id) > len(st.mcvFreq) {
		return 0
	}
	if f := st.mcvFreq[id-1]; f > 0 {
		return f
	}
	other := st.nDistinct - float64(st.numMCV)
	if other < 1 {
		// The MCV list is believed to cover the whole domain; a value
		// outside it is (nearly) nonexistent.
		return 0
	}
	sel := (1 - st.sumMCV - st.nullFrac) / other
	if sel < 0 {
		sel = 0
	}
	// PostgreSQL clamps so a non-MCV value is never deemed more likely
	// than the least common MCV.
	for _, f := range st.mcvFreq {
		if f > 0 && sel > f {
			sel = f
		}
	}
	return sel
}

// EstimateRow implements core.Estimator: |D| × Π EqSel(clause), the
// clauselist_selectivity independence product.
func (s *Stats) EstimateRow(vals []uint16, attrs lattice.AttrSet) float64 {
	sel := 1.0
	for _, a := range attrs.Members() {
		sel *= s.EqSel(a, vals[a])
		if sel == 0 {
			return 0
		}
	}
	return sel * float64(s.totalRows)
}

// Estimate estimates the count of an explicit pattern.
func (s *Stats) Estimate(p core.Pattern) float64 {
	return s.EstimateRow(p.Values(), p.Attrs())
}
