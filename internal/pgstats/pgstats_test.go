package pgstats

import (
	"fmt"
	"math"
	"testing"

	"pcbl/internal/core"
	"pcbl/internal/datagen"
	"pcbl/internal/dataset"
	"pcbl/internal/lattice"
	"pcbl/internal/testutil"
)

var _ core.Estimator = (*Stats)(nil)

func TestAnalyzeBasics(t *testing.T) {
	d := testutil.Fig2()
	s, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRows() != 18 {
		t.Errorf("total rows = %d", s.TotalRows())
	}
	if s.StatisticRows() != 4 {
		t.Errorf("statistic rows = %d, want 4 (one per attribute)", s.StatisticRows())
	}
	if s.MCVEntries() == 0 {
		t.Error("no MCV entries collected")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	b := dataset.NewBuilder("e", "x")
	d, _ := b.Build()
	if _, err := Analyze(d, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

// TestMarginalsExactWithFullSample: when the ANALYZE sample covers the whole
// table, single-attribute estimates are exact.
func TestMarginalsExactWithFullSample(t *testing.T) {
	d := testutil.Fig2()
	s, err := Analyze(d, Options{SampleRows: 18})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d.NumAttrs(); a++ {
		counts := d.ValueCounts(a)
		for i, c := range counts {
			p, _ := core.PatternFromIDs(lattice.NewAttrSet(a), denseVal(d.NumAttrs(), a, uint16(i+1)))
			if got := s.Estimate(p); math.Abs(got-float64(c)) > 1e-9 {
				t.Errorf("attr %d value %d: estimate %v, want %d", a, i+1, got, c)
			}
		}
	}
}

func denseVal(n, attr int, id uint16) []uint16 {
	v := make([]uint16, n)
	v[attr] = id
	return v
}

// TestIndependenceMultiplication: the conjunctive estimate is exactly the
// product of the per-clause selectivities times |D|.
func TestIndependenceMultiplication(t *testing.T) {
	d := testutil.Fig2()
	s, err := Analyze(d, Options{SampleRows: 18})
	if err != nil {
		t.Fatal(err)
	}
	gi, _ := d.AttrIndex("gender")
	ri, _ := d.AttrIndex("race")
	gID, _ := d.Attr(gi).ID("Female")
	rID, _ := d.Attr(ri).ID("Hispanic")
	vals := make([]uint16, d.NumAttrs())
	vals[gi], vals[ri] = gID, rID
	got := s.EstimateRow(vals, lattice.NewAttrSet(gi, ri))
	want := s.EqSel(gi, gID) * s.EqSel(ri, rID) * 18
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate %v != product %v", got, want)
	}
	// Fig 2: 9/18 Female × 6/18 Hispanic × 18 = 3.
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("estimate %v, want 3", got)
	}
}

// TestCannotSeeCorrelation: on the Example 2.7 correlated data, the
// PostgreSQL-style estimator keeps the independence answer while the true
// count is twice it — the failure the PCBL label fixes.
func TestCannotSeeCorrelation(t *testing.T) {
	d := testutil.BinaryCorrelated(6)
	s, err := Analyze(d, Options{SampleRows: d.NumRows()})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := core.NewPattern(d, map[string]string{"A1": "0", "A2": "0", "A3": "0"})
	got := s.Estimate(p)
	indep := float64(d.NumRows()) / 8 // (1/2)^3
	if math.Abs(got-indep) > 1e-9 {
		t.Errorf("estimate %v, want independence %v", got, indep)
	}
	if trueCount := core.CountPattern(d, p); float64(trueCount) <= got {
		t.Errorf("true count %d should exceed independence estimate %v", trueCount, got)
	}
}

func TestEqSelUnknownValue(t *testing.T) {
	d := testutil.Fig2()
	s, err := Analyze(d, Options{SampleRows: 18})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EqSel(0, dataset.Null); got != 0 {
		t.Errorf("EqSel(NULL) = %v", got)
	}
	if got := s.EqSel(0, 200); got != 0 {
		t.Errorf("EqSel(out of domain) = %v", got)
	}
}

// TestNDistinctEstimation: with a small sample of a large skewed domain the
// Haas–Stokes estimate lands between the sampled distinct count and |D|.
func TestNDistinctEstimation(t *testing.T) {
	d, err := datagen.BlueNile(20000, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Analyze(d, Options{StatisticsTarget: 2, SampleRows: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d.NumAttrs(); a++ {
		nd := s.attrs[a].nDistinct
		if nd < 1 || nd > float64(d.NumRows()) {
			t.Errorf("attr %d: n_distinct = %v out of range", a, nd)
		}
	}
}

// TestBoundIndependence: the estimator's accuracy is a property of the
// statistics target, not of any label bound — the flat gray line of Fig 4.
func TestBoundIndependence(t *testing.T) {
	d, err := datagen.COMPAS(5000, 17)
	if err != nil {
		t.Fatal(err)
	}
	ps := core.DistinctTuples(d)
	s, err := Analyze(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1 := core.Evaluate(s, ps, core.EvalOptions{})
	r2 := core.Evaluate(s, ps, core.EvalOptions{})
	if r1.MaxAbs != r2.MaxAbs || r1.MeanQ != r2.MeanQ {
		t.Error("estimator not deterministic across evaluations")
	}
}

func TestNullFraction(t *testing.T) {
	b := dataset.NewBuilder("n", "x")
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			b.AppendStrings("")
		} else {
			b.AppendStrings("v")
		}
	}
	d, _ := b.Build()
	s, err := Analyze(d, Options{SampleRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.attrs[0].nullFrac-0.5) > 1e-9 {
		t.Errorf("null fraction = %v, want 0.5", s.attrs[0].nullFrac)
	}
	// The value "v" occurs in half the rows.
	id, _ := d.Attr(0).ID("v")
	if got := s.EqSel(0, id); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("EqSel = %v, want 0.5", got)
	}
}

// TestEqSelNonMCVPath: with a tight statistics target and a small sample of
// a larger domain, non-MCV values take the remaining-mass path, clamped by
// the least common MCV frequency.
func TestEqSelNonMCVPath(t *testing.T) {
	b := dataset.NewBuilder("skew", "x")
	// A heavy hitter plus a long tail of rare values.
	for i := 0; i < 600; i++ {
		b.AppendStrings("hot")
	}
	for i := 0; i < 60; i++ {
		b.AppendStrings(fmt.Sprintf("cold-%d", i%30))
	}
	d, _ := b.Build()
	s, err := Analyze(d, Options{StatisticsTarget: 1, SampleRows: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	hotID, _ := d.Attr(0).ID("hot")
	coldID, _ := d.Attr(0).ID("cold-0")
	hot, cold := s.EqSel(0, hotID), s.EqSel(0, coldID)
	if hot <= 0 {
		t.Fatal("heavy hitter has zero selectivity")
	}
	if cold < 0 || cold > hot {
		t.Errorf("non-MCV selectivity %v outside [0, mcv=%v]", cold, hot)
	}
	// Conjunction estimate is still well-formed.
	vals := []uint16{coldID}
	if est := s.EstimateRow(vals, lattice.NewAttrSet(0)); est < 0 || est > float64(d.NumRows()) {
		t.Errorf("estimate %v out of range", est)
	}
}

// TestEqSelCoveredDomain: when the sample convinces ANALYZE the MCV list
// covers the whole domain, an unseen value gets selectivity 0.
func TestEqSelCoveredDomain(t *testing.T) {
	b := dataset.NewBuilder("cov", "x")
	for i := 0; i < 100; i++ {
		b.AppendStrings(fmt.Sprintf("v%d", i%3))
	}
	b.AppendStrings("rare") // in the domain, likely outside a tiny sample
	d, _ := b.Build()
	s, err := Analyze(d, Options{StatisticsTarget: 10, SampleRows: 101, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Full sample: everything is an MCV, f1 handling exercised via "rare".
	rareID, _ := d.Attr(0).ID("rare")
	if got := s.EqSel(0, rareID); got <= 0 {
		// With a full sample rare IS sampled once; with dDistinct ≤ target
		// it stays in the MCV list, so selectivity must be positive.
		t.Errorf("rare value selectivity = %v, want > 0", got)
	}
}

// TestAnalyzeAllNullColumn: a column of only NULLs yields zero estimates
// but no panic.
func TestAnalyzeAllNullColumn(t *testing.T) {
	b := dataset.NewBuilder("nullcol", "x", "y")
	for i := 0; i < 20; i++ {
		b.AppendStrings("", "v")
	}
	d, _ := b.Build()
	s, err := Analyze(d, Options{SampleRows: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EqSel(0, 1); got != 0 {
		t.Errorf("all-NULL column selectivity = %v", got)
	}
	vals := make([]uint16, 2)
	vals[1], _ = d.Attr(1).ID("v")
	if est := s.EstimateRow(vals, lattice.NewAttrSet(1)); est != 20 {
		t.Errorf("estimate = %v, want 20", est)
	}
}
