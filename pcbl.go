package pcbl

import (
	"fmt"
	"io"

	"pcbl/internal/artifact"
	"pcbl/internal/core"
	"pcbl/internal/dataset"
	"pcbl/internal/htmlreport"
	"pcbl/internal/lattice"
	"pcbl/internal/patexpr"
	"pcbl/internal/search"
)

// Re-exported types. The implementation lives in the internal packages; the
// aliases give external callers stable names on the public surface.
type (
	// Dataset is an immutable columnar table of categorical attributes.
	Dataset = dataset.Dataset
	// Attribute describes one column and its dictionary-encoded domain.
	Attribute = dataset.Attribute
	// CSVOptions controls CSV parsing.
	CSVOptions = dataset.CSVOptions
	// BucketizeOptions controls numeric bucketization.
	BucketizeOptions = dataset.BucketizeOptions
	// FilterOptions controls attribute pruning.
	FilterOptions = dataset.FilterOptions
	// Pattern is a set of attribute = value assignments (Definition 2.1).
	Pattern = core.Pattern
	// Label is a pattern count–based label L_S(D) (Definition 2.9).
	Label = core.Label
	// PortableLabel is a self-contained serializable label.
	PortableLabel = core.PortableLabel
	// PatternSet is an evaluation workload of patterns with true counts.
	PatternSet = core.PatternSet
	// EvalResult aggregates estimation error over a pattern set.
	EvalResult = core.EvalResult
	// AttrSet is a set of attribute indices.
	AttrSet = lattice.AttrSet
	// SearchResult is the outcome of an optimal-label search.
	SearchResult = search.Result
	// SearchStats describes the work a search performed.
	SearchStats = search.Stats
)

// Bin strategies for Bucketize.
const (
	EqualWidth     = dataset.EqualWidth
	EqualFrequency = dataset.EqualFrequency
)

// ReadCSV loads a dataset from header-bearing CSV text.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) { return dataset.ReadCSV(r, opts) }

// ReadCSVFile loads a dataset from a CSV file.
func ReadCSVFile(path string, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSVFile(path, opts)
}

// WriteCSV writes a dataset as CSV.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// Bucketize re-encodes numeric attributes into range buckets (paper §II:
// continuous domains are bucketized before labeling).
func Bucketize(d *Dataset, attrNames []string, opts BucketizeOptions) (*Dataset, error) {
	return dataset.Bucketize(d, attrNames, opts)
}

// BucketizeAllNumeric bucketizes every numeric attribute.
func BucketizeAllNumeric(d *Dataset, opts BucketizeOptions) (*Dataset, error) {
	return dataset.BucketizeAllNumeric(d, opts)
}

// FilterAttrs drops id-like and constant attributes (the paper's COMPAS
// preparation).
func FilterAttrs(d *Dataset, opts FilterOptions) (*Dataset, error) {
	return dataset.FilterAttrs(d, opts)
}

// NewPattern builds a pattern from attribute-name → value assignments.
func NewPattern(d *Dataset, assign map[string]string) (Pattern, error) {
	return core.NewPattern(d, assign)
}

// Count computes c_D(p), the number of tuples satisfying the pattern.
func Count(d *Dataset, p Pattern) int { return core.CountPattern(d, p) }

// AttrSetOf resolves attribute names to an AttrSet for the given dataset.
func AttrSetOf(d *Dataset, names ...string) (AttrSet, error) {
	return lattice.FromNames(d.AttrNames(), names...)
}

// BuildLabel computes L_S(D) for an explicit attribute set given by name.
// The group-by behind the PC section (and behind every lazily built
// marginal index) runs on the sharded parallel counting engine with all
// available CPUs.
func BuildLabel(d *Dataset, attrNames ...string) (*Label, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildLabelOpts(d, s, core.CountOptions{}), nil
}

// PartialLabel is the partial-pattern label extension (paper §II-C future
// work): tuples NULL in part of S still contribute their partial pattern,
// and restriction counts are exact even on NULL-bearing data.
type PartialLabel = core.PartialLabel

// BuildPartialLabel computes the partial-pattern label over the named
// attributes.
func BuildPartialLabel(d *Dataset, attrNames ...string) (*PartialLabel, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildPartialLabel(d, s), nil
}

// ParsePattern builds a pattern from a textual expression such as
// "gender = Female AND race = Hispanic" (see internal/patexpr for the
// grammar).
func ParsePattern(d *Dataset, expr string) (Pattern, error) {
	assign, err := patexpr.Parse(expr)
	if err != nil {
		return Pattern{}, err
	}
	return core.NewPattern(d, assign)
}

// LabelSize computes |P_S| — the size a label built on the named attribute
// set would have — with the sharded parallel counting engine (all available
// CPUs). When bound >= 0 and the size exceeds it, counting aborts early and
// LabelSize reports (bound+1, false); pass bound -1 for the exact size.
func LabelSize(d *Dataset, bound int, attrNames ...string) (size int, within bool, err error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return 0, false, err
	}
	size, within = core.LabelSizeParallel(d, s, bound, core.CountOptions{})
	return size, within, nil
}

// LabelSizes computes |P_S| for a whole frontier of attribute sets in one
// fused pass over the dataset (one group-by keyer per set, shared column
// access, per-set early abort at the bound), sharded across workers
// (0 = NumCPU). For each set i the pair (sizes[i], within[i]) matches what
// LabelSize would report. This is the scan the label search's enumeration
// phase runs level by level.
func LabelSizes(d *Dataset, sets []AttrSet, bound, workers int) (sizes []int, within []bool) {
	return core.LabelSizesFused(d, sets, bound, core.CountOptions{Workers: workers})
}

// PatternsOver builds the workload P_S: every positive-count pattern over
// the named attributes — the "sensitive attributes only" workload of
// Definition 2.15. The underlying group-by runs on the sharded parallel
// counting engine with all available CPUs.
func PatternsOver(d *Dataset, attrNames ...string) (*PatternSet, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.PatternsOverOpts(d, s, core.CountOptions{}), nil
}

// WriteHTMLReport renders a self-contained HTML page for a label (the
// paper's "simple user interface" presentation). A nil eval omits the
// estimation-quality block.
func WriteHTMLReport(w io.Writer, l *Label, eval *EvalResult) error {
	return htmlreport.Write(w, l.Portable(), htmlreport.Options{Eval: eval})
}

// Algorithm selects the label search strategy.
type Algorithm string

const (
	// TopDown is Algorithm 1, the paper's optimized heuristic (default).
	TopDown Algorithm = "topdown"
	// Naive is the level-wise baseline algorithm of §III.
	Naive Algorithm = "naive"
)

// GenerateOptions configures GenerateLabel.
type GenerateOptions struct {
	// Bound is B_s, the maximum label size |P_S|. Required.
	Bound int
	// Algorithm selects the search strategy; TopDown when empty.
	Algorithm Algorithm
	// Patterns is the workload to optimize against; P_A (every distinct
	// full tuple, as in the paper's experiments) when nil.
	Patterns *PatternSet
	// FastEval enables the paper's sorted early-termination evaluation.
	FastEval bool
	// BranchAndBound enables the beyond-paper evaluation cutoff (never
	// changes the result).
	BranchAndBound bool
	// Workers bounds parallelism in both search phases (0 = NumCPU):
	// candidate enumeration shards its fused label-size scans across
	// workers, and the evaluation phase scores candidates concurrently.
	// Parallel runs return exactly the sequential result.
	Workers int
	// DisableRefine turns off parent-PC reuse during enumeration: every
	// frontier is sized by raw fused scans instead of refining cached
	// parent indexes. The search result is identical either way; the knob
	// exists for ablation and for memory-constrained runs (the refinement
	// cache retains up to ~256 MiB of group vectors by default).
	DisableRefine bool
	// DisableBatchRefine turns off only the batched sibling-refinement
	// tier of the enumeration scheduler: dense-keyable candidates are then
	// sized one at a time against cached parent indexes (the previous
	// engine behaviour) instead of whole same-parent batches in single
	// passes over virtual group vectors. Result-identical; for ablation.
	DisableBatchRefine bool
	// DenseLimit overrides the counting engine's dense-kernel threshold
	// for raw dataset scans: 0 means the engine default (a 2^22-slot key
	// space), a negative value forces scan group-bys onto the hash-map
	// kernels. The refinement path has its own compact-space
	// representation and is not affected; pair with DisableRefine to
	// reproduce the full pre-dense engine behaviour.
	DenseLimit int
	// MemBudget bounds the in-memory grouping state of a single group-by
	// in bytes. Attribute sets beyond the dense kernel whose estimated
	// hash-map footprint exceeds the budget are counted out-of-core: keys
	// hash-partition into on-disk runs (fixed-width uint64 records when
	// the mixed-radix key fits uint64, byte records otherwise) sized to
	// each counting worker's share of the budget, and the key-disjoint
	// runs are counted in parallel. Label builds are bounded end to end: a
	// result map that models over the budget stays on disk and is served
	// merge-on-read. Results are identical to the in-memory engine. Zero
	// means unlimited. SearchStats.SpilledSets/SpilledU64Sets/SpillRuns/
	// SpillParallelRuns/SpillBytes report the tier's use.
	MemBudget int64
	// SpillDir overrides where spill run files are written (system temp
	// directory when empty).
	SpillDir string
}

// GenerateLabel finds an (approximately) optimal label within the size
// bound: the attribute subset whose label minimizes the maximum count-
// estimation error over the workload (Definition 2.15), searched with the
// selected algorithm.
func GenerateLabel(d *Dataset, opts GenerateOptions) (*SearchResult, error) {
	ps := opts.Patterns
	if ps == nil {
		ps = core.DistinctTuples(d)
	}
	so := search.Options{
		Bound:              opts.Bound,
		FastEval:           opts.FastEval,
		BranchAndBound:     opts.BranchAndBound,
		Workers:            opts.Workers,
		DisableRefine:      opts.DisableRefine,
		DisableBatchRefine: opts.DisableBatchRefine,
		DenseLimit:         opts.DenseLimit,
		MemBudget:          opts.MemBudget,
		SpillDir:           opts.SpillDir,
	}
	switch opts.Algorithm {
	case "", TopDown:
		return search.TopDown(d, ps, so)
	case Naive:
		return search.Naive(d, ps, so)
	default:
		return nil, fmt.Errorf("pcbl: unknown algorithm %q", opts.Algorithm)
	}
}

// DistinctTuples returns P_A: every distinct NULL-free tuple with its
// multiplicity — the paper's evaluation pattern set.
func DistinctTuples(d *Dataset) *PatternSet { return core.DistinctTuples(d) }

// Evaluate scores a label against a workload (all error metrics of §IV-B).
// A nil workload means P_A.
func Evaluate(l *Label, ps *PatternSet) EvalResult {
	if ps == nil {
		ps = core.DistinctTuples(l.Dataset())
	}
	return core.Evaluate(l, ps, core.EvalOptions{})
}

// RenderLabel renders the human-readable nutrition label of Fig 1. Pass a
// non-nil eval to append the error summary block.
func RenderLabel(l *Label, eval *EvalResult) string {
	return core.Render(l, core.RenderOptions{Eval: eval})
}

// EncodeLabel serializes a label into its self-contained JSON form.
func EncodeLabel(l *Label) ([]byte, error) { return l.Portable().Encode() }

// DecodeLabel parses a label previously produced by EncodeLabel. The result
// can estimate pattern counts without access to the original dataset.
func DecodeLabel(data []byte) (*PortableLabel, error) { return core.DecodePortableLabel(data) }

// LabelOptions configures the counting engine behind BuildLabelWith. The
// fields mirror the engine knobs of GenerateOptions (see there for the full
// semantics); the zero value matches BuildLabel.
type LabelOptions struct {
	// Workers bounds group-by parallelism (0 = NumCPU).
	Workers int
	// DenseLimit overrides the dense-kernel threshold (0 = engine default,
	// negative forces the hash-map kernels).
	DenseLimit int
	// MemBudget bounds in-memory grouping state in bytes; over-budget
	// results stay on disk and are served merge-on-read (0 = unlimited).
	MemBudget int64
	// SpillDir overrides where spill runs are written (system temp when
	// empty).
	SpillDir string
}

// BuildLabelWith is BuildLabel with explicit engine options — the
// constructor behind `pcbl save` when the label attributes are given rather
// than searched for.
func BuildLabelWith(d *Dataset, opts LabelOptions, attrNames ...string) (*Label, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildLabelOpts(d, s, core.CountOptions{
		Workers:    opts.Workers,
		DenseLimit: opts.DenseLimit,
		MemBudget:  opts.MemBudget,
		SpillDir:   opts.SpillDir,
	}), nil
}

// LabelManifest describes a saved label artifact (see docs/artifact-format.md).
type LabelManifest = artifact.Manifest

// SaveLabelArtifact writes the label — PC section, VC section, and every
// materialized marginal index, with spilled payloads relocated rather than
// re-counted — into dir as a versioned on-disk artifact. dir must not exist
// or be empty. The source label stays fully usable afterwards.
func SaveLabelArtifact(l *Label, dir string) error { return artifact.Save(l, dir) }

// OpenLabelArtifact reopens a saved label artifact read-only. The returned
// label answers Count/Estimate/Marginal queries bit-identically to the
// label that was saved; call ReleaseSpill when done if the artifact carries
// merge-on-read payloads (this does not delete the artifact's files).
func OpenLabelArtifact(dir string) (*Label, *LabelManifest, error) { return artifact.Open(dir) }
