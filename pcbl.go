package pcbl

import (
	"context"
	"fmt"
	"io"
	"time"

	"pcbl/internal/artifact"
	"pcbl/internal/core"
	"pcbl/internal/dataset"
	"pcbl/internal/htmlreport"
	"pcbl/internal/iofault"
	"pcbl/internal/lattice"
	"pcbl/internal/patexpr"
	"pcbl/internal/search"
	"pcbl/internal/spill"
)

// Re-exported types. The implementation lives in the internal packages; the
// aliases give external callers stable names on the public surface.
type (
	// Dataset is an immutable columnar table of categorical attributes.
	Dataset = dataset.Dataset
	// Attribute describes one column and its dictionary-encoded domain.
	Attribute = dataset.Attribute
	// CSVOptions controls CSV parsing.
	CSVOptions = dataset.CSVOptions
	// BucketizeOptions controls numeric bucketization.
	BucketizeOptions = dataset.BucketizeOptions
	// FilterOptions controls attribute pruning.
	FilterOptions = dataset.FilterOptions
	// Pattern is a set of attribute = value assignments (Definition 2.1).
	Pattern = core.Pattern
	// Label is a pattern count–based label L_S(D) (Definition 2.9).
	Label = core.Label
	// PortableLabel is a self-contained serializable label.
	PortableLabel = core.PortableLabel
	// PatternSet is an evaluation workload of patterns with true counts.
	PatternSet = core.PatternSet
	// EvalResult aggregates estimation error over a pattern set.
	EvalResult = core.EvalResult
	// AttrSet is a set of attribute indices.
	AttrSet = lattice.AttrSet
	// SearchResult is the outcome of an optimal-label search.
	SearchResult = search.Result
	// SearchStats describes the work a search performed.
	SearchStats = search.Stats
)

// Bin strategies for Bucketize.
const (
	EqualWidth     = dataset.EqualWidth
	EqualFrequency = dataset.EqualFrequency
)

// FS is the filesystem seam the counting engine's spill tier and the
// artifact layer write through; nil always means the real OS filesystem.
// Tests inject fault-scripted implementations here.
type FS = iofault.FS

// EngineOptions is the one knob set for the counting engine behind every
// facade entry point — label builds (LabelOptions.Engine), label searches
// (GenerateOptions.Engine), and incremental merges. The zero value means
// all defaults: all CPUs, the engine's dense threshold, unlimited memory,
// system temp spill, the OS filesystem.
type EngineOptions struct {
	// Workers bounds group-by parallelism (0 = NumCPU).
	Workers int
	// DenseLimit overrides the dense-kernel threshold (0 = engine default,
	// a 2^22-slot key space; negative forces the hash-map kernels).
	DenseLimit int
	// MemBudget bounds the in-memory grouping state of a single group-by
	// in bytes; over-budget group-bys count out-of-core via hash-
	// partitioned on-disk runs, and over-budget result maps stay on disk
	// and serve merge-on-read. Results are identical to the in-memory
	// engine. Zero means unlimited.
	MemBudget int64
	// SpillDir overrides where spill run files are written (system temp
	// directory when empty).
	SpillDir string
	// FS is the filesystem seam spill runs are written through; nil means
	// the real OS filesystem.
	FS FS
	// DisableSharedSpill turns off the shared-scan spill partitioner
	// during searches (result-identical; for ablation).
	DisableSharedSpill bool
}

// countOptions lowers the facade options onto the internal engine.
func (e EngineOptions) countOptions() core.CountOptions {
	return core.CountOptions{
		Workers:            e.Workers,
		DenseLimit:         e.DenseLimit,
		MemBudget:          e.MemBudget,
		SpillDir:           e.SpillDir,
		FS:                 e.FS,
		DisableSharedSpill: e.DisableSharedSpill,
	}
}

// ReadCSV loads a dataset from header-bearing CSV text.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) { return dataset.ReadCSV(r, opts) }

// ReadCSVFile loads a dataset from a CSV file.
func ReadCSVFile(path string, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSVFile(path, opts)
}

// WriteCSV writes a dataset as CSV.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// Bucketize re-encodes numeric attributes into range buckets (paper §II:
// continuous domains are bucketized before labeling).
func Bucketize(d *Dataset, attrNames []string, opts BucketizeOptions) (*Dataset, error) {
	return dataset.Bucketize(d, attrNames, opts)
}

// BucketizeAllNumeric bucketizes every numeric attribute.
func BucketizeAllNumeric(d *Dataset, opts BucketizeOptions) (*Dataset, error) {
	return dataset.BucketizeAllNumeric(d, opts)
}

// FilterAttrs drops id-like and constant attributes (the paper's COMPAS
// preparation).
func FilterAttrs(d *Dataset, opts FilterOptions) (*Dataset, error) {
	return dataset.FilterAttrs(d, opts)
}

// NewPattern builds a pattern from attribute-name → value assignments.
func NewPattern(d *Dataset, assign map[string]string) (Pattern, error) {
	return core.NewPattern(d, assign)
}

// Count computes c_D(p), the number of tuples satisfying the pattern.
func Count(d *Dataset, p Pattern) int { return core.CountPattern(d, p) }

// AttrSetOf resolves attribute names to an AttrSet for the given dataset.
func AttrSetOf(d *Dataset, names ...string) (AttrSet, error) {
	return lattice.FromNames(d.AttrNames(), names...)
}

// BuildLabel computes L_S(D) for an explicit attribute set given by name.
// The group-by behind the PC section (and behind every lazily built
// marginal index) runs on the sharded parallel counting engine with all
// available CPUs.
func BuildLabel(d *Dataset, attrNames ...string) (*Label, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildLabelOpts(d, s, core.CountOptions{}), nil
}

// BuildLabelCtx is BuildLabel with cooperative cancellation: the counting
// engine polls ctx at row-block (and spill-run) granularity, and a fired
// context abandons the build — spill temp files removed, no partial label —
// returning the typed context error (context.Canceled or
// context.DeadlineExceeded). A nil ctx is exactly BuildLabel.
func BuildLabelCtx(ctx context.Context, d *Dataset, attrNames ...string) (*Label, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildLabelOptsCtx(ctx, d, s, core.CountOptions{})
}

// PartialLabel is the partial-pattern label extension (paper §II-C future
// work): tuples NULL in part of S still contribute their partial pattern,
// and restriction counts are exact even on NULL-bearing data.
type PartialLabel = core.PartialLabel

// BuildPartialLabel computes the partial-pattern label over the named
// attributes.
func BuildPartialLabel(d *Dataset, attrNames ...string) (*PartialLabel, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildPartialLabel(d, s), nil
}

// ParsePattern builds a pattern from a textual expression such as
// "gender = Female AND race = Hispanic" (see internal/patexpr for the
// grammar).
func ParsePattern(d *Dataset, expr string) (Pattern, error) {
	assign, err := patexpr.Parse(expr)
	if err != nil {
		return Pattern{}, err
	}
	return core.NewPattern(d, assign)
}

// LabelSize computes |P_S| — the size a label built on the named attribute
// set would have — with the sharded parallel counting engine (all available
// CPUs). When bound >= 0 and the size exceeds it, counting aborts early and
// LabelSize reports (bound+1, false); pass bound -1 for the exact size.
func LabelSize(d *Dataset, bound int, attrNames ...string) (size int, within bool, err error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return 0, false, err
	}
	size, within = core.LabelSizeParallel(d, s, bound, core.CountOptions{})
	return size, within, nil
}

// LabelSizes computes |P_S| for a whole frontier of attribute sets in one
// fused pass over the dataset (one group-by keyer per set, shared column
// access, per-set early abort at the bound), sharded across workers
// (0 = NumCPU). For each set i the pair (sizes[i], within[i]) matches what
// LabelSize would report. This is the scan the label search's enumeration
// phase runs level by level.
func LabelSizes(d *Dataset, sets []AttrSet, bound, workers int) (sizes []int, within []bool) {
	return core.LabelSizesFused(d, sets, bound, core.CountOptions{Workers: workers})
}

// PatternsOver builds the workload P_S: every positive-count pattern over
// the named attributes — the "sensitive attributes only" workload of
// Definition 2.15. The underlying group-by runs on the sharded parallel
// counting engine with all available CPUs.
func PatternsOver(d *Dataset, attrNames ...string) (*PatternSet, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.PatternsOverOpts(d, s, core.CountOptions{}), nil
}

// WriteHTMLReport renders a self-contained HTML page for a label (the
// paper's "simple user interface" presentation). A nil eval omits the
// estimation-quality block.
func WriteHTMLReport(w io.Writer, l *Label, eval *EvalResult) error {
	return htmlreport.Write(w, l.Portable(), htmlreport.Options{Eval: eval})
}

// Algorithm selects the label search strategy.
type Algorithm string

const (
	// TopDown is Algorithm 1, the paper's optimized heuristic (default).
	TopDown Algorithm = "topdown"
	// Naive is the level-wise baseline algorithm of §III.
	Naive Algorithm = "naive"
)

// GenerateOptions configures GenerateLabel.
type GenerateOptions struct {
	// Bound is B_s, the maximum label size |P_S|. Required.
	Bound int
	// Algorithm selects the search strategy; TopDown when empty.
	Algorithm Algorithm
	// Patterns is the workload to optimize against; P_A (every distinct
	// full tuple, as in the paper's experiments) when nil.
	Patterns *PatternSet
	// FastEval enables the paper's sorted early-termination evaluation.
	FastEval bool
	// BranchAndBound enables the beyond-paper evaluation cutoff (never
	// changes the result).
	BranchAndBound bool

	// Timeout bounds the whole search when positive: the search runs under
	// a deadline of now+Timeout (composed with any GenerateCtx context —
	// whichever fires first wins) and an expired deadline abandons the
	// search, releases every spill-backed label already built, and returns
	// context.DeadlineExceeded. Zero means no deadline.
	Timeout time.Duration

	// Engine configures the counting engine (workers, dense threshold,
	// memory budget, spill placement, filesystem seam). A non-zero Engine
	// field wins over the matching deprecated top-level field below.
	Engine EngineOptions

	// Workers bounds parallelism in both search phases (0 = NumCPU):
	// candidate enumeration shards its fused label-size scans across
	// workers, and the evaluation phase scores candidates concurrently.
	// Parallel runs return exactly the sequential result.
	//
	// Deprecated: set Engine.Workers.
	Workers int
	// DisableRefine turns off parent-PC reuse during enumeration: every
	// frontier is sized by raw fused scans instead of refining cached
	// parent indexes. The search result is identical either way; the knob
	// exists for ablation and for memory-constrained runs (the refinement
	// cache retains up to ~256 MiB of group vectors by default).
	DisableRefine bool
	// DisableBatchRefine turns off only the batched sibling-refinement
	// tier of the enumeration scheduler: dense-keyable candidates are then
	// sized one at a time against cached parent indexes (the previous
	// engine behaviour) instead of whole same-parent batches in single
	// passes over virtual group vectors. Result-identical; for ablation.
	DisableBatchRefine bool
	// DenseLimit overrides the counting engine's dense-kernel threshold
	// for raw dataset scans: 0 means the engine default (a 2^22-slot key
	// space), a negative value forces scan group-bys onto the hash-map
	// kernels. The refinement path has its own compact-space
	// representation and is not affected; pair with DisableRefine to
	// reproduce the full pre-dense engine behaviour.
	//
	// Deprecated: set Engine.DenseLimit.
	DenseLimit int
	// MemBudget bounds the in-memory grouping state of a single group-by
	// in bytes. Attribute sets beyond the dense kernel whose estimated
	// hash-map footprint exceeds the budget are counted out-of-core: keys
	// hash-partition into on-disk runs (fixed-width uint64 records when
	// the mixed-radix key fits uint64, byte records otherwise) sized to
	// each counting worker's share of the budget, and the key-disjoint
	// runs are counted in parallel. Label builds are bounded end to end: a
	// result map that models over the budget stays on disk and is served
	// merge-on-read. Results are identical to the in-memory engine. Zero
	// means unlimited. SearchStats.SpilledSets/SpilledU64Sets/SpillRuns/
	// SpillParallelRuns/SpillBytes report the tier's use.
	//
	// Deprecated: set Engine.MemBudget.
	MemBudget int64
	// SpillDir overrides where spill run files are written (system temp
	// directory when empty).
	//
	// Deprecated: set Engine.SpillDir.
	SpillDir string
}

// engine resolves the effective engine options: Engine, with each zero
// field falling back to the matching deprecated top-level field, so
// pre-EngineOptions callers keep their behaviour unchanged.
func (o GenerateOptions) engine() EngineOptions {
	e := o.Engine
	if e.Workers == 0 {
		e.Workers = o.Workers
	}
	if e.DenseLimit == 0 {
		e.DenseLimit = o.DenseLimit
	}
	if e.MemBudget == 0 {
		e.MemBudget = o.MemBudget
	}
	if e.SpillDir == "" {
		e.SpillDir = o.SpillDir
	}
	return e
}

// GenerateLabel finds an (approximately) optimal label within the size
// bound: the attribute subset whose label minimizes the maximum count-
// estimation error over the workload (Definition 2.15), searched with the
// selected algorithm.
func GenerateLabel(d *Dataset, opts GenerateOptions) (*SearchResult, error) {
	return GenerateCtx(nil, d, opts)
}

// GenerateCtx is GenerateLabel with cooperative cancellation: both search
// phases poll ctx (enumeration at row-block granularity inside fused
// sizing scans, evaluation between and inside candidate label builds), and
// a fired context abandons the search, releases every spill-backed label
// already built, and returns the typed context error. opts.Timeout, when
// positive, is composed as a deadline on top of ctx. A nil ctx with a zero
// Timeout is exactly GenerateLabel.
func GenerateCtx(ctx context.Context, d *Dataset, opts GenerateOptions) (*SearchResult, error) {
	if opts.Timeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, opts.Timeout)
		defer cancel()
	}
	ps := opts.Patterns
	if ps == nil {
		ps = core.DistinctTuples(d)
	}
	eng := opts.engine()
	so := search.Options{
		Bound:              opts.Bound,
		FastEval:           opts.FastEval,
		BranchAndBound:     opts.BranchAndBound,
		Workers:            eng.Workers,
		DisableRefine:      opts.DisableRefine,
		DisableBatchRefine: opts.DisableBatchRefine,
		DenseLimit:         eng.DenseLimit,
		MemBudget:          eng.MemBudget,
		SpillDir:           eng.SpillDir,
		FS:                 eng.FS,
		DisableSharedSpill: eng.DisableSharedSpill,
		Ctx:                ctx,
	}
	switch opts.Algorithm {
	case "", TopDown:
		return search.TopDown(d, ps, so)
	case Naive:
		return search.Naive(d, ps, so)
	default:
		return nil, fmt.Errorf("pcbl: unknown algorithm %q", opts.Algorithm)
	}
}

// DistinctTuples returns P_A: every distinct NULL-free tuple with its
// multiplicity — the paper's evaluation pattern set.
func DistinctTuples(d *Dataset) *PatternSet { return core.DistinctTuples(d) }

// Evaluate scores a label against a workload (all error metrics of §IV-B).
// A nil workload means P_A.
func Evaluate(l *Label, ps *PatternSet) EvalResult {
	if ps == nil {
		ps = core.DistinctTuples(l.Dataset())
	}
	return core.Evaluate(l, ps, core.EvalOptions{})
}

// RenderLabel renders the human-readable nutrition label of Fig 1. Pass a
// non-nil eval to append the error summary block.
func RenderLabel(l *Label, eval *EvalResult) string {
	return core.Render(l, core.RenderOptions{Eval: eval})
}

// EncodeLabel serializes a label into its self-contained JSON form.
func EncodeLabel(l *Label) ([]byte, error) { return l.Portable().Encode() }

// DecodeLabel parses a label previously produced by EncodeLabel. The result
// can estimate pattern counts without access to the original dataset.
func DecodeLabel(data []byte) (*PortableLabel, error) { return core.DecodePortableLabel(data) }

// LabelOptions configures the counting engine behind BuildLabelWith. The
// zero value matches BuildLabel.
type LabelOptions struct {
	// Engine configures the counting engine. A non-zero Engine field wins
	// over the matching deprecated top-level field below.
	Engine EngineOptions

	// Workers bounds group-by parallelism (0 = NumCPU).
	//
	// Deprecated: set Engine.Workers.
	Workers int
	// DenseLimit overrides the dense-kernel threshold (0 = engine default,
	// negative forces the hash-map kernels).
	//
	// Deprecated: set Engine.DenseLimit.
	DenseLimit int
	// MemBudget bounds in-memory grouping state in bytes; over-budget
	// results stay on disk and are served merge-on-read (0 = unlimited).
	//
	// Deprecated: set Engine.MemBudget.
	MemBudget int64
	// SpillDir overrides where spill runs are written (system temp when
	// empty).
	//
	// Deprecated: set Engine.SpillDir.
	SpillDir string
}

// engine resolves the effective engine options, exactly as
// GenerateOptions.engine does.
func (o LabelOptions) engine() EngineOptions {
	e := o.Engine
	if e.Workers == 0 {
		e.Workers = o.Workers
	}
	if e.DenseLimit == 0 {
		e.DenseLimit = o.DenseLimit
	}
	if e.MemBudget == 0 {
		e.MemBudget = o.MemBudget
	}
	if e.SpillDir == "" {
		e.SpillDir = o.SpillDir
	}
	return e
}

// BuildLabelWith is BuildLabel with explicit engine options — the
// constructor behind `pcbl save` when the label attributes are given rather
// than searched for.
func BuildLabelWith(d *Dataset, opts LabelOptions, attrNames ...string) (*Label, error) {
	s, err := AttrSetOf(d, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildLabelOpts(d, s, opts.engine().countOptions()), nil
}

// LabelManifest describes a saved label artifact (see docs/artifact-format.md).
type LabelManifest = artifact.Manifest

// SaveLabelArtifact writes the label — PC section, VC section, and every
// materialized marginal index, with spilled payloads relocated rather than
// re-counted — into dir as a versioned on-disk artifact. dir must not exist
// or be empty. The source label stays fully usable afterwards.
func SaveLabelArtifact(l *Label, dir string) error { return artifact.Save(l, dir) }

// OpenLabelArtifact reopens a saved label artifact read-only. The returned
// label answers Count/Estimate/Marginal queries bit-identically to the
// label that was saved; call ReleaseSpill when done if the artifact carries
// merge-on-read payloads (this does not delete the artifact's files).
func OpenLabelArtifact(dir string) (*Label, *LabelManifest, error) { return artifact.Open(dir) }

// DeltaMeta binds a delta artifact to the base artifact state (epoch and
// row watermark) its rows were counted against.
type DeltaMeta = artifact.DeltaMeta

// Typed artifact error classes, re-exported for errors.Is dispatch.
var (
	// ErrArtifactIncomplete marks a directory without a readable manifest
	// (not an artifact, or a save that crashed before its commit point).
	ErrArtifactIncomplete = artifact.ErrIncomplete
	// ErrArtifactCorrupt marks artifact data that failed checksum or
	// length verification.
	ErrArtifactCorrupt = artifact.ErrCorrupt
	// ErrArtifactManifest marks a manifest that parsed but is invalid.
	ErrArtifactManifest = artifact.ErrManifest
	// ErrEpochMismatch marks an incremental merge whose delta was built
	// against a different artifact epoch or row watermark than the one on
	// disk; rebuild the delta against the current manifest.
	ErrEpochMismatch = artifact.ErrEpochMismatch
	// ErrNoSpace marks disk-space exhaustion (ENOSPC) during spill writes
	// or artifact saves/merges. Builds and sizing scans that hit it degrade
	// to the in-memory engine with identical results (metered in stats);
	// saves and merges abort cleanly — crash-safety holds, the previous
	// artifact generation stays committed. Dispatch with
	// errors.Is(err, ErrNoSpace).
	ErrNoSpace = spill.ErrNoSpace
)

// ReadCSVAppend reads the appended tail of a grown CSV into a delta
// dataset for incremental label maintenance: the header must name base's
// attributes in order, opts.SkipRows rows (the base's row watermark) are
// passed over without being stored or interned, and the kept rows build on
// a copy of base's dictionaries — known values keep their identifiers, new
// values extend the domains. base may be schema-only (an artifact's
// reopened dataset). The result is what Label.Merge and MergeLabelArtifact
// expect as a delta's dataset.
func ReadCSVAppend(r io.Reader, base *Dataset, opts CSVOptions) (*Dataset, error) {
	return dataset.ReadCSVAppend(r, base, opts)
}

// BuildDeltaLabel counts a delta label over only the appended rows —
// delta must come from ReadCSVAppend (or dataset slicing) so its
// dictionaries extend the base's — on the same attribute set as the base
// label or artifact it will merge into. The counting pass reads only
// delta's rows, never the history.
func BuildDeltaLabel(delta *Dataset, engine EngineOptions, attrNames ...string) (*Label, error) {
	s, err := AttrSetOf(delta, attrNames...)
	if err != nil {
		return nil, err
	}
	return core.BuildLabelOpts(delta, s, engine.countOptions()), nil
}

// SaveDeltaArtifact writes a delta label as its own artifact, tagged with
// the base manifest's epoch and row watermark so MergeDeltaArtifact can
// later verify it still applies. base is the manifest of the artifact the
// delta extends, from OpenLabelArtifact at delta-build time.
func SaveDeltaArtifact(l *Label, dir string, base *LabelManifest) error {
	return artifact.SaveDelta(l, dir, base)
}

// MergeLabelArtifact folds a delta label — counted over only the rows
// appended after the base artifact's watermark — into the artifact at
// baseDir, committing an updated artifact (epoch incremented) whose label
// is bit-identical to a full rebuild. base is the manifest the delta was
// built against; if the on-disk artifact has moved past it the merge is
// rejected with ErrEpochMismatch and the artifact is untouched (nil skips
// the check). The commit is crash-safe: at every instant the directory
// holds one complete artifact — the old one until the manifest rename, the
// merged one after.
func MergeLabelArtifact(baseDir string, delta *Label, base *LabelManifest) (*LabelManifest, error) {
	return artifact.MergeInto(baseDir, delta, base)
}

// MergeDeltaArtifact folds a saved delta artifact (SaveDeltaArtifact) into
// the base artifact it is bound to, with the same epoch verification and
// crash-safety as MergeLabelArtifact.
func MergeDeltaArtifact(baseDir, deltaDir string) (*LabelManifest, error) {
	return artifact.MergeDeltaInto(baseDir, deltaDir)
}
