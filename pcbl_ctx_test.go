package pcbl

// Facade-level cancellation and deadline contract: GenerateCtx /
// BuildLabelCtx return the typed context error when their context fires,
// GenerateOptions.Timeout composes a deadline for callers who don't manage
// contexts, and ErrNoSpace classifies disk exhaustion through the facade.

import (
	"context"
	"errors"
	"io/fs"
	"syscall"
	"testing"
	"time"

	"pcbl/internal/spill"
	"pcbl/internal/testutil"
)

func TestGenerateCtxCancelled(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := testutil.Fig2()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateCtx(ctx, d, GenerateOptions{Bound: 5, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenerateTimeoutExpired(t *testing.T) {
	testutil.CheckGoroutines(t)
	d := testutil.Fig2()
	_, err := GenerateLabel(d, GenerateOptions{Bound: 5, Workers: 2, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestGenerateCtxAndTimeoutCompose(t *testing.T) {
	d := testutil.Fig2()
	// A generous caller context with a tiny Timeout: the Timeout wins.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	_, err := GenerateCtx(ctx, d, GenerateOptions{Bound: 5, Workers: 1, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// And a cancelled caller context with a generous Timeout: the caller wins.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	_, err = GenerateCtx(cctx, d, GenerateOptions{Bound: 5, Workers: 1, Timeout: time.Hour})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBuildLabelCtxCancelled(t *testing.T) {
	d := testutil.Fig2()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildLabelCtx(ctx, d, "age group", "marital status"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same build succeeds with a live context.
	l, err := BuildLabelCtx(context.Background(), d, "age group", "marital status")
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() == 0 {
		t.Fatal("live-context build returned an empty label")
	}
}

func TestErrNoSpaceIdentity(t *testing.T) {
	// The facade's ErrNoSpace is the engine's: a wrapped ENOSPC from any
	// layer matches through the re-export.
	enospc := &fs.PathError{Op: "write", Path: "run-0001", Err: syscall.ENOSPC}
	if !errors.Is(spill.WrapNoSpace(enospc), ErrNoSpace) {
		t.Fatal("wrapped ENOSPC does not match pcbl.ErrNoSpace")
	}
}
