// Package pcbl is a Go implementation of "Patterns Count-Based Labels for
// Datasets" (Moskovitch & Jagadish, ICDE 2021): bounded-size dataset labels
// that record value counts for every attribute value plus pattern counts
// over a chosen attribute subset, from which the count of any attribute-
// value combination in the data can be estimated — the count profile a
// "nutrition label for datasets" needs in order to expose representation
// gaps, skew and correlated attributes before the data is used to train a
// model.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core     — patterns, labels, estimation, error metrics,
//     and the sharded parallel counting engine (fused frontier scans)
//   - internal/search   — optimal-label search (naive and Algorithm 1)
//   - internal/dataset  — categorical columnar tables, CSV, bucketization
//   - internal/sampling, internal/pgstats — the paper's baselines
//   - internal/workpool — chunked work-pool primitives shared by the above
//   - internal/datagen  — emulators of the paper's evaluation datasets
//   - internal/experiments — regeneration of every evaluation figure
//
// # Quick start
//
//	d, _ := pcbl.ReadCSVFile("people.csv", pcbl.CSVOptions{})
//	res, _ := pcbl.GenerateLabel(d, pcbl.GenerateOptions{Bound: 50})
//	fmt.Println(pcbl.RenderLabel(res.Label, nil))
//
//	p, _ := pcbl.NewPattern(d, map[string]string{"race": "Hispanic", "gender": "Female"})
//	fmt.Printf("≈ %.0f rows\n", res.Label.Estimate(p))
//
// A label can be serialized into a self-contained JSON artifact
// (PortableLabel) and shipped as metadata with the dataset; consumers can
// then estimate counts without the data itself.
//
// # Incremental maintenance
//
// A saved label artifact is updated in place when the dataset grows,
// reading only the appended rows: ReadCSVAppend parses the suffix past the
// artifact's row watermark, BuildDeltaLabel counts it, and
// MergeLabelArtifact folds it into the artifact under an incremented
// epoch — bit-identical to a rebuild over the full file. SaveDeltaArtifact
// and MergeDeltaArtifact split the two halves across machines; the delta
// artifact records the base epoch and row count it was built against, and
// a merge against any other generation is refused with ErrEpochMismatch.
// The `pcbl update` subcommand drives the whole flow, and a serving
// daemon swaps to the merged artifact on SIGHUP or POST /v1/reload
// without dropping in-flight queries.
//
// Engine configuration (workers, dense-kernel threshold, memory budget,
// spill placement) lives in EngineOptions, embedded as the Engine field of
// GenerateOptions and LabelOptions and passed directly to
// BuildDeltaLabel. The older top-level fields of those option structs
// remain as deprecated aliases; a set Engine field wins over its alias.
//
// # Errors and panics
//
// The package reports expected failures — malformed input, unknown
// attributes or values, artifact damage, disk trouble — as errors, and
// artifact errors wrap the typed sentinels ErrArtifactIncomplete,
// ErrArtifactCorrupt, ErrArtifactManifest and ErrEpochMismatch for
// errors.Is dispatch. The core panics only on API misuse — a Pattern
// built against a different dataset's dictionaries, an attribute index
// out of range — never on data or disk contents, with one deliberate
// exception: the error-free query methods (Count, Estimate) panic if a
// spilled PC section hits an unrecoverable read fault, because returning
// would mean returning a wrong count. Long-lived consumers of artifact-
// backed labels should use the error-returning variants (CountE,
// EstimateE), which surface the fault instead; the serving layer does,
// degrading the request rather than the process.
//
// Cancellation is a third, distinct family. Work bounded by a caller's
// context — GenerateCtx, BuildLabelCtx, the *Ctx query variants — stops
// cooperatively when the context fires and returns an error wrapping
// context.Canceled or context.DeadlineExceeded (check with errors.Is),
// never a panic and never a partial result: an interrupted build yields a
// nil label with its spill scratch removed, an interrupted query yields no
// count. Cancellation is the caller's doing, so unlike a read fault it
// does not degrade or poison the label — the same label answers the next
// query with a live context. Disk exhaustion is likewise typed: writes
// that run out of space surface ErrNoSpace through the error chain, and
// spill-backed builds degrade to their in-memory kernel (metered, not an
// error) when scratch space runs out. See docs/operations.md for how the
// serve daemon maps these families onto HTTP statuses and admission
// control.
package pcbl
