// Package pcbl is a Go implementation of "Patterns Count-Based Labels for
// Datasets" (Moskovitch & Jagadish, ICDE 2021): bounded-size dataset labels
// that record value counts for every attribute value plus pattern counts
// over a chosen attribute subset, from which the count of any attribute-
// value combination in the data can be estimated — the count profile a
// "nutrition label for datasets" needs in order to expose representation
// gaps, skew and correlated attributes before the data is used to train a
// model.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core     — patterns, labels, estimation, error metrics,
//     and the sharded parallel counting engine (fused frontier scans)
//   - internal/search   — optimal-label search (naive and Algorithm 1)
//   - internal/dataset  — categorical columnar tables, CSV, bucketization
//   - internal/sampling, internal/pgstats — the paper's baselines
//   - internal/workpool — chunked work-pool primitives shared by the above
//   - internal/datagen  — emulators of the paper's evaluation datasets
//   - internal/experiments — regeneration of every evaluation figure
//
// # Quick start
//
//	d, _ := pcbl.ReadCSVFile("people.csv", pcbl.CSVOptions{})
//	res, _ := pcbl.GenerateLabel(d, pcbl.GenerateOptions{Bound: 50})
//	fmt.Println(pcbl.RenderLabel(res.Label, nil))
//
//	p, _ := pcbl.NewPattern(d, map[string]string{"race": "Hispanic", "gender": "Female"})
//	fmt.Printf("≈ %.0f rows\n", res.Label.Estimate(p))
//
// A label can be serialized into a self-contained JSON artifact
// (PortableLabel) and shipped as metadata with the dataset; consumers can
// then estimate counts without the data itself.
package pcbl
